// Package trace records structured events from the emulated deployment
// — sends, drops, deliveries, failures — for debugging monitoring
// topologies and for the remo-sim -trace output.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"remo/internal/model"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// Send: a node emitted an update message.
	Send Kind = iota + 1
	// RecvDrop: a node dropped an inbound message (capacity).
	RecvDrop
	// SendDrop: a node dropped its own update (capacity or link loss).
	SendDrop
	// Deliver: the collector accepted a message.
	Deliver
	// NodeDead: a node entered its failed state.
	NodeDead
	// Detect: the failure detector declared a node dead.
	Detect
	// Repair: the runtime rebuilt the topology around failed nodes.
	Repair
	// NodeRecover: a declared-dead node produced fresh evidence of life.
	NodeRecover
	// Delayed: chaos injection held a message back for later rounds.
	Delayed
	// CollectorDead: the central collector crashed.
	CollectorDead
	// CollectorResume: a restarted collector rejoined the session.
	CollectorResume
	// Shed: a leaf's outgoing buffer overflowed and dropped its oldest
	// frame.
	Shed
	// Replan: a task mutation replanned the topology (Values carries
	// the number of rebuilt trees).
	Replan
	// TreeKept: a plan swap reused this tree byte-for-byte (no
	// re-announcement to its members).
	TreeKept
	// TreeRebuilt: a plan swap installed a new or restructured tree.
	TreeRebuilt
	// TreeDropped: a plan swap retired this tree's attribute set.
	TreeDropped
	// ShardDead: the dispatcher declared a collector shard dead (Node
	// carries the shard index).
	ShardDead
	// ShardResume: a collector shard rejoined the session (Node carries
	// the shard index).
	ShardResume
	// Orphan: a tree lost its owning shard (Node carries the dead shard
	// index, TreeKey the tree).
	Orphan
	// Redispatch: the dispatcher re-homed an orphaned tree (Node the
	// old shard, Peer the new one).
	Redispatch
	// Leader: the dispatcher elected a new leaseholder (Node carries the
	// shard index).
	Leader
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case RecvDrop:
		return "recv-drop"
	case SendDrop:
		return "send-drop"
	case Deliver:
		return "deliver"
	case NodeDead:
		return "node-dead"
	case Detect:
		return "detect"
	case Repair:
		return "repair"
	case NodeRecover:
		return "node-recover"
	case Delayed:
		return "delayed"
	case CollectorDead:
		return "coll-dead"
	case CollectorResume:
		return "coll-up"
	case Shed:
		return "shed"
	case Replan:
		return "replan"
	case TreeKept:
		return "tree-kept"
	case TreeRebuilt:
		return "tree-rebuilt"
	case TreeDropped:
		return "tree-dropped"
	case ShardDead:
		return "shard-dead"
	case ShardResume:
		return "shard-up"
	case Orphan:
		return "orphan"
	case Redispatch:
		return "redispatch"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Round int
	Kind  Kind
	// Node is the acting node (the sender, dropper, or dead node; the
	// collector for Deliver events).
	Node model.NodeID
	// Peer is the other endpoint when applicable (destination of a
	// send, source of a delivery).
	Peer model.NodeID
	// TreeKey identifies the tree the message belonged to.
	TreeKey string
	// Values is the message's payload size.
	Values int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("r%03d %-9s %v->%v tree=%s values=%d",
		e.Round, e.Kind, e.Node, e.Peer, e.TreeKey, e.Values)
}

// Recorder retains a bounded number of events. It is safe for
// concurrent use by the emulation's node goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	max    int
	// dropped counts events discarded once the buffer is full.
	dropped int
	// filter, when non-zero, retains only events of these kinds.
	filter map[Kind]struct{}
}

// NewRecorder returns a recorder retaining up to max events (default
// 4096 when max <= 0).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{max: max}
}

// Keep restricts recording to the given kinds (all kinds when never
// called).
func (r *Recorder) Keep(kinds ...Kind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.filter = make(map[Kind]struct{}, len(kinds))
	for _, k := range kinds {
		r.filter[k] = struct{}{}
	}
}

// Record appends an event (dropping it when the buffer is full).
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filter != nil {
		if _, keep := r.filter[e.Kind]; !keep {
			return
		}
	}
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the retained events ordered by round, then kind, then
// node (events within one round happen concurrently; the order is
// canonical, not causal).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.TreeKey < b.TreeKey
	})
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were discarded after the buffer
// filled.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Counts tallies retained events per kind.
func (r *Recorder) Counts() map[Kind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]int)
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// Dump writes the retained events as text, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d further events dropped (buffer full)\n", d); err != nil {
			return err
		}
	}
	return nil
}
