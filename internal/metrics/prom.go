package metrics

// Prometheus-style exposition machinery for the service tier: a small
// registry of counters, gauges and fixed-bucket histograms rendered in
// the text format scrapers understand. Only the subset the repo needs
// is implemented — single-label scrape-time gauge families are the only
// labeled shape, no push, just atomic instruments and a deterministic
// Fprint.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative fixed buckets, plus a
// running sum and count — the Prometheus histogram exposition shape.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefaultLatencyBuckets suit request latencies in seconds: 1ms..10s.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0..1) by linear assignment inside
// the first bucket whose cumulative count covers it. Estimates are
// bucket-resolution only; use the load harness for exact percentiles.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	prevBound, prevCum := 0.0, int64(0)
	for i, b := range h.bounds {
		cum := h.buckets[i].Load()
		if cum >= rank {
			inBucket := cum - prevCum
			if inBucket <= 0 {
				return b
			}
			frac := float64(rank-prevCum) / float64(inBucket)
			return prevBound + frac*(b-prevBound)
		}
		prevBound, prevCum = b, cum
	}
	return h.bounds[len(h.bounds)-1]
}

// kind tags a registered family for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindLabeledGaugeFunc
	kindHistogram
)

// family is one registered metric.
type family struct {
	name, help string
	kind       kind
	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	label      string
	labeledFn  func() map[string]float64
	hist       *Histogram
}

// Registry holds named instruments and renders them as Prometheus text.
// Registration order is exposition order; re-registering a name returns
// the existing instrument.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered as a different kind", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter)
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge)
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGaugeFunc)
	f.gaugeFn = fn
}

// LabeledGaugeFunc registers a gauge family with one label whose series
// are computed at scrape time: fn returns label value → gauge value and
// the series print sorted by label, so the exposition is deterministic
// even though the set of series may change between scrapes.
func (r *Registry) LabeledGaugeFunc(name, help, label string, fn func() map[string]float64) {
	f := r.register(name, help, kindLabeledGaugeFunc)
	f.label = label
	f.labeledFn = fn
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds (DefaultLatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram)
	if f.hist == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		f.hist = newHistogram(bounds)
	}
	return f.hist
}

// Fprint renders every registered family in Prometheus text format, in
// registration order.
func (r *Registry) Fprint(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		var err error
		switch f.kind {
		case kindCounter:
			err = printSimple(w, f.name, f.help, "counter", float64(f.counter.Value()))
		case kindGauge:
			err = printSimple(w, f.name, f.help, "gauge", f.gauge.Value())
		case kindGaugeFunc:
			err = printSimple(w, f.name, f.help, "gauge", f.gaugeFn())
		case kindLabeledGaugeFunc:
			err = printLabeled(w, f)
		case kindHistogram:
			err = printHistogram(w, f)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func printSimple(w io.Writer, name, help, typ string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, formatProm(v))
	return err
}

func printLabeled(w io.Writer, f *family) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n",
		f.name, f.help, f.name); err != nil {
		return err
	}
	series := f.labeledFn()
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n",
			f.name, f.label, k, formatProm(series[k])); err != nil {
			return err
		}
	}
	return nil
}

func printHistogram(w io.Writer, f *family) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		f.name, f.help, f.name); err != nil {
		return err
	}
	for i, b := range f.hist.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			f.name, formatProm(b), f.hist.buckets[i].Load()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, f.hist.Count()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		f.name, formatProm(f.hist.Sum()), f.name, f.hist.Count())
	return err
}

// formatProm renders values the way Prometheus clients do: integers
// without a decimal point, everything else in shortest-round-trip form.
func formatProm(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
