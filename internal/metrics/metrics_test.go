package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableAddAndColumn(t *testing.T) {
	tbl := NewTable("Fig X", "nodes", "REMO", "SP", "OP")
	if err := tbl.Add(50, 90, 60, 70); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(100, 85, 55, 50); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(1, 2); err == nil {
		t.Fatal("mismatched row accepted")
	}
	col, ok := tbl.Column("SP")
	if !ok || len(col) != 2 || col[0] != 60 || col[1] != 55 {
		t.Fatalf("Column(SP) = %v, %v", col, ok)
	}
	if _, ok := tbl.Column("missing"); ok {
		t.Fatal("missing column found")
	}
}

func TestTableFprint(t *testing.T) {
	tbl := NewTable("Fig 5a", "attrs", "REMO", "SP")
	_ = tbl.Add(10, 92.5, 60)
	_ = tbl.Add(200, 71, 55.25)
	out := tbl.String()
	if !strings.Contains(out, "# Fig 5a") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "attrs") || !strings.Contains(lines[1], "REMO") {
		t.Fatalf("bad header: %s", lines[1])
	}
	if !strings.Contains(lines[2], "92.50") {
		t.Fatalf("bad formatting: %s", lines[2])
	}
	if !strings.Contains(lines[3], "200") || !strings.Contains(lines[3], "55.25") {
		t.Fatalf("bad row: %s", lines[3])
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, 0, 4}); got != 0 {
		t.Fatalf("GeoMean with zero = %v", got)
	}
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
}

func TestRatio(t *testing.T) {
	got := Ratio([]float64{50, 30, 10}, []float64{100, 60, 0})
	if got[0] != 50 || got[1] != 50 || got[2] != 0 {
		t.Fatalf("Ratio = %v", got)
	}
	if len(Ratio([]float64{1, 2}, []float64{1})) != 1 {
		t.Fatal("Ratio length mismatch handling broken")
	}
}

func TestTableFprintCSV(t *testing.T) {
	tbl := NewTable("Fig X", "n", "A", "B")
	_ = tbl.Add(1, 2.5, 3)
	var b strings.Builder
	if err := tbl.FprintCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "# Fig X\nn,A,B\n1,2.50,3\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
