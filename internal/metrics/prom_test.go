package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterBasics pins counter monotonicity: Inc/Add accumulate and
// negative deltas are ignored.
func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

// TestGaugeSetAdd pins gauge arithmetic including negative adjustments.
func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

// TestHistogramObserve pins cumulative bucket counts, sum, count, and
// the quantile estimator on a known distribution.
func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 16.5 {
		t.Fatalf("sum = %v, want 16.5", got)
	}
	wantBuckets := []int64{1, 3, 4} // ≤1, ≤2, ≤4
	for i, want := range wantBuckets {
		if got := h.buckets[i].Load(); got != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
	// Median falls in the (1,2] bucket; p99 exceeds every bound.
	if q := h.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %v, want in (1,2]", q)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %v, want 4 (top bound)", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestRegistryFprint pins the exposition format: HELP/TYPE lines,
// integer formatting, histogram buckets with +Inf, gauge funcs.
func TestRegistryFprint(t *testing.T) {
	r := NewRegistry()
	r.Counter("remo_ops_total", "total operations").Add(3)
	r.Gauge("remo_draining", "1 while draining").Set(1)
	r.GaugeFunc("remo_goroutines", "live goroutines", func() float64 { return 7 })
	h := r.Histogram("remo_admission_seconds", "admission latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)

	var b strings.Builder
	if err := r.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP remo_ops_total total operations",
		"# TYPE remo_ops_total counter",
		"remo_ops_total 3",
		"# TYPE remo_draining gauge",
		"remo_draining 1",
		"remo_goroutines 7",
		"# TYPE remo_admission_seconds histogram",
		`remo_admission_seconds_bucket{le="0.01"} 1`,
		`remo_admission_seconds_bucket{le="0.1"} 2`,
		`remo_admission_seconds_bucket{le="+Inf"} 2`,
		"remo_admission_seconds_sum 0.055",
		"remo_admission_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestLabeledGaugeFunc pins the single-label family exposition: one
// HELP/TYPE header, series sorted by label value, scrape-time values.
func TestLabeledGaugeFunc(t *testing.T) {
	r := NewRegistry()
	series := map[string]float64{"r2": 87.5, "r0": 100, "r1": 0}
	r.LabeledGaugeFunc("remo_region_coverage", "per-region coverage percent",
		"region", func() map[string]float64 { return series })

	var b strings.Builder
	if err := r.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP remo_region_coverage per-region coverage percent\n" +
		"# TYPE remo_region_coverage gauge\n" +
		`remo_region_coverage{region="r0"} 100` + "\n" +
		`remo_region_coverage{region="r1"} 0` + "\n" +
		`remo_region_coverage{region="r2"} 87.5` + "\n"
	if got := b.String(); got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}

	// The next scrape reflects the callback's current view.
	series["r1"] = 50
	b.Reset()
	if err := r.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `remo_region_coverage{region="r1"} 50`) {
		t.Fatalf("stale series after mutation:\n%s", b.String())
	}
}

// TestRegistryReuseAndKindClash pins idempotent registration and the
// panic on re-registering a name as a different kind.
func TestRegistryReuseAndKindClash(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x")
	c2 := r.Counter("x_total", "x")
	if c1 != c2 {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestPromConcurrency exercises instruments from many goroutines so the
// race detector can vet the atomics.
func TestPromConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1600 || g.Value() != 1600 || h.Count() != 1600 {
		t.Fatalf("after concurrency: c=%d g=%v h=%d, want 1600 each",
			c.Value(), g.Value(), h.Count())
	}
}
