// Package metrics provides the result-table machinery the experiment
// harness uses to print each paper figure as an aligned text series:
// one row per x-axis value, one column per compared scheme.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one experiment's result series.
type Table struct {
	// Title identifies the experiment (e.g. "Fig 5a — % collected vs
	// attributes per task").
	Title string
	// XLabel names the x axis.
	XLabel string
	// Columns names the compared schemes.
	Columns []string
	// Rows holds one entry per x value.
	Rows []Row
}

// Row is one x-axis point with one cell per column.
type Row struct {
	X     float64
	Cells []float64
}

// NewTable returns an empty table.
func NewTable(title, xLabel string, columns ...string) *Table {
	return &Table{Title: title, XLabel: xLabel, Columns: columns}
}

// Add appends a row; the number of cells must match the columns.
func (t *Table) Add(x float64, cells ...float64) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("metrics: row has %d cells, table has %d columns",
			len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, Row{X: x, Cells: cells})
	return nil
}

// Column returns the series of one column by name.
func (t *Table) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Cells[idx]
	}
	return out, true
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	header := make([]string, len(t.Columns)+1)
	header[0] = t.XLabel
	for i, c := range t.Columns {
		header[i+1] = c
		widths[i+1] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r.Cells)+1)
		cells[ri][0] = formatNum(r.X)
		for ci, v := range r.Cells {
			cells[ri][ci+1] = formatNum(v)
		}
		for ci, s := range cells[ri] {
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	if err := printRow(w, header, widths); err != nil {
		return err
	}
	for _, row := range cells {
		if err := printRow(w, row, widths); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// FprintCSV renders the table as CSV (title as a comment line), for
// plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	header := append([]string{t.XLabel}, t.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, 0, len(r.Cells)+1)
		cells = append(cells, formatNum(r.X))
		for _, v := range r.Cells {
			cells = append(cells, formatNum(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FprintJSON renders the table as an indented JSON object; the field
// names match the struct (Title, XLabel, Columns, Rows).
func (t *Table) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

func printRow(w io.Writer, cells []string, widths []int) error {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = pad(c, widths[i])
	}
	_, err := fmt.Fprintln(w, strings.Join(parts, "  "))
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs (0 if any value is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Ratio returns 100·a/b as a percentage series, guarding zero
// denominators.
func Ratio(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if b[i] == 0 {
			out[i] = 0
			continue
		}
		out[i] = 100 * a[i] / b[i]
	}
	return out
}
