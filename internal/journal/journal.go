// Package journal makes a monitoring session durable: it persists the
// collector-side state a crashed session needs to resume — the
// installed plan's epoch and fingerprint, the monitoring demand, the
// failure detector's dead set, repair history, trigger re-arm state and
// the repository's recent samples — as periodic checkpoints plus a
// write-ahead log of per-round deltas.
//
// The on-disk discipline mirrors the wire codec's: big-endian,
// length-prefixed records with the layout constants below as the single
// source of truth. Every record is CRC-guarded, so recovery can detect
// a torn tail (a crash mid-append) and truncate it instead of reading
// garbage. Files live in one directory as numbered segments:
//
//	ckpt-N  full state snapshot opening segment N
//	wal-N   the deltas appended since ckpt-N
//
// Recovery loads the newest intact checkpoint and replays its WAL on
// top; older segments are pruned on rotation, bounding disk use.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"remo/internal/model"
	"remo/internal/predict"
	"remo/internal/store"
	"remo/internal/task"
)

// File headers: 8 magic bytes identifying role and format version.
var (
	ckptMagic = []byte("REMOCKP1")
	walMagic  = []byte("REMOWAL1")
)

// Record framing layout — the single source of truth, like the wire
// codec's header constants. A record is:
//
//	length(uint32) kind(uint8) payload crc32(uint32)
//
// where length covers kind+payload and the CRC is computed over
// kind+payload (IEEE polynomial).
const (
	recLenSize  = 4
	recKindSize = 1
	recCRCSize  = 4
	// maxRecordSize bounds a single record; anything larger is treated
	// as corruption.
	maxRecordSize = 1 << 26
)

// Record kinds.
const (
	// recCheckpoint is a full State snapshot (only record in ckpt files).
	recCheckpoint = 1
	// recEpoch logs a plan install: epoch, fingerprint, installed demand.
	recEpoch = 2
	// recTasks logs a change to the base (user-submitted) demand, the
	// partition behind the replanned topology, its forest fingerprint
	// and the swap's tree-level diff counts.
	recTasks = 3
	// recVerdict logs a failure-detector verdict (death or recovery).
	recVerdict = 4
	// recRepair logs one topology repair.
	recRepair = 5
	// recSamples logs the values the collector accepted in one round.
	recSamples = 6
	// recAssign logs the dispatcher's tree→shard assignment after a
	// placement decision (initial placement, re-dispatch, rebalance or
	// retarget), so a cold resume rebuilds the identical map.
	recAssign = 7
)

// State is the durable session state: everything a restarted collector
// needs that it cannot re-derive from configuration.
type State struct {
	// Epoch is the last installed plan epoch.
	Epoch uint32
	// Fingerprint identifies the installed forest (plan.Forest
	// Fingerprint), letting a resumed session tell whether a replanned
	// topology matches the pre-crash one.
	Fingerprint uint64
	// Round is the last round whose samples were journaled.
	Round int
	// Failures, Recoveries and Repairs are the self-healing history
	// counters.
	Failures, Recoveries, Repairs int
	// Demand is the installed (possibly repair-pruned) demand.
	Demand *task.Demand
	// BaseDemand is the user-submitted demand before pruning.
	BaseDemand *task.Demand
	// Partition is the attribute partition behind the installed plan.
	// The planner's evaluation is deterministic in (system, demand,
	// partition), so a cold resume can rebuild the exact pre-crash
	// forest from it instead of searching anew.
	Partition []model.AttrSet
	// Dead is the failure detector's declared-dead set (node →
	// declaration round).
	Dead map[model.NodeID]int
	// Store holds the journaled samples.
	Store *store.Store
	// Cooldowns is the trigger re-arm state (checkpoint-granular).
	Cooldowns map[string]map[model.Pair]int
	// Assignment is the dispatcher's tree→shard map for sharded
	// sessions (nil for single-collector sessions). Encoded as an
	// optional trailing checkpoint field so pre-sharding journals stay
	// readable.
	Assignment map[string]int
	// Models holds the collector-side forecasting replica snapshots for
	// sessions running dead-band suppression (nil otherwise). Like
	// Assignment it is a trailing optional field; when present it forces
	// the assignment section to be emitted (possibly empty) so field
	// positions stay unambiguous.
	Models map[model.Pair]predict.Snapshot
}

// SampleRec is one collected value as journaled by recSamples records.
type SampleRec struct {
	Pair  model.Pair
	Round int
	Value float64
}

// Errors.
var (
	ErrNoJournal = errors.New("journal: no checkpoint found")
	ErrCorrupt   = errors.New("journal: corrupt record")
)

var crcTable = crc32.IEEETable

// appendRecord frames kind+payload into dst.
func appendRecord(dst []byte, kind uint8, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(recKindSize+len(payload)))
	body := len(dst)
	dst = append(dst, kind)
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[body:], crcTable))
}

// splitRecord consumes one record from p, verifying length and CRC.
// It returns the kind, payload and remaining bytes; ok is false when p
// holds no intact record (a torn or corrupt tail).
func splitRecord(p []byte) (kind uint8, payload, rest []byte, ok bool) {
	if len(p) < recLenSize {
		return 0, nil, p, false
	}
	n := int(binary.BigEndian.Uint32(p))
	if n < recKindSize || n > maxRecordSize || len(p) < recLenSize+n+recCRCSize {
		return 0, nil, p, false
	}
	body := p[recLenSize : recLenSize+n]
	want := binary.BigEndian.Uint32(p[recLenSize+n:])
	if crc32.Checksum(body, crcTable) != want {
		return 0, nil, p, false
	}
	return body[0], body[1:], p[recLenSize+n+recCRCSize:], true
}

// reader is a cursor over a record payload; the first short read or
// malformed field latches err and zero-values every later read.
type reader struct {
	p   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.p) < n {
		r.err = fmt.Errorf("%w: short payload", ErrCorrupt)
		return nil
	}
	b := r.p[:n]
	r.p = r.p[n:]
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i32() int { return int(int32(r.u32())) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n > maxRecordSize {
		if r.err == nil {
			r.err = fmt.Errorf("%w: oversized string", ErrCorrupt)
		}
		return ""
	}
	return string(r.take(n))
}

// --- field group encodings -------------------------------------------

// appendDemand encodes a demand as count + (node, attr, weight) triples
// in canonical pair order.
func appendDemand(dst []byte, d *task.Demand) []byte {
	if d == nil {
		return binary.BigEndian.AppendUint32(dst, 0)
	}
	pairs := d.Pairs()
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(pairs)))
	for _, p := range pairs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Attr)))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Weight(p.Node, p.Attr)))
	}
	return dst
}

func (r *reader) demand() *task.Demand {
	n := int(r.u32())
	d := task.NewDemand()
	for i := 0; i < n && r.err == nil; i++ {
		node := model.NodeID(r.i32())
		attr := model.AttrID(r.i32())
		w := r.f64()
		if r.err == nil {
			d.Set(node, attr, w)
		}
	}
	return d
}

// appendPartition encodes an attribute partition as count + per-set
// attribute lists in the partition's (stable) order.
func appendPartition(dst []byte, sets []model.AttrSet) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(sets)))
	for _, s := range sets {
		attrs := s.Attrs()
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(attrs)))
		for _, a := range attrs {
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(a)))
		}
	}
	return dst
}

func (r *reader) partition() []model.AttrSet {
	n := int(r.u32())
	if r.err != nil || n > maxRecordSize {
		if r.err == nil {
			r.err = fmt.Errorf("%w: oversized partition", ErrCorrupt)
		}
		return nil
	}
	sets := make([]model.AttrSet, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := int(r.u32())
		if r.err != nil || k > maxRecordSize {
			if r.err == nil {
				r.err = fmt.Errorf("%w: oversized attr set", ErrCorrupt)
			}
			return nil
		}
		attrs := make([]model.AttrID, 0, k)
		for j := 0; j < k && r.err == nil; j++ {
			attrs = append(attrs, model.AttrID(r.i32()))
		}
		if r.err == nil {
			sets = append(sets, model.NewAttrSet(attrs...))
		}
	}
	if r.err != nil {
		return nil
	}
	return sets
}

// appendTasks encodes a recTasks payload: the base demand, the
// partition now in force, the installed forest's fingerprint and the
// swap's kept/rebuilt/dropped tree counts.
func appendTasks(dst []byte, base *task.Demand, sets []model.AttrSet, fingerprint uint64, kept, rebuilt, dropped int) []byte {
	dst = appendDemand(dst, base)
	dst = appendPartition(dst, sets)
	dst = binary.BigEndian.AppendUint64(dst, fingerprint)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(kept)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(rebuilt)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(dropped)))
	return dst
}

// appendEpoch encodes a recEpoch payload.
func appendEpoch(dst []byte, epoch uint32, fingerprint uint64, installed *task.Demand) []byte {
	dst = binary.BigEndian.AppendUint32(dst, epoch)
	dst = binary.BigEndian.AppendUint64(dst, fingerprint)
	return appendDemand(dst, installed)
}

// appendVerdict encodes a recVerdict payload.
func appendVerdict(dst []byte, node model.NodeID, declaredAt int, recovered bool) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(node)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(declaredAt)))
	if recovered {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendSamples encodes a recSamples payload: the round plus every
// value the collector accepted in it.
func appendSamples(dst []byte, round int, recs []SampleRec) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(round)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for _, s := range recs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Pair.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Pair.Attr)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Round)))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Value))
	}
	return dst
}

// appendAssignment encodes a tree→shard map as count + (key, shard)
// pairs in sorted key order.
func appendAssignment(dst []byte, assign map[string]int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(assign)))
	for _, k := range sortedAssignKeys(assign) {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(assign[k])))
	}
	return dst
}

func (r *reader) assignment() map[string]int {
	n := int(r.u32())
	if r.err != nil || n > maxRecordSize {
		if r.err == nil {
			r.err = fmt.Errorf("%w: oversized assignment", ErrCorrupt)
		}
		return nil
	}
	m := make(map[string]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		s := r.i32()
		if r.err == nil {
			m[k] = s
		}
	}
	if r.err != nil {
		return nil
	}
	return m
}

// appendCheckpoint encodes a full State snapshot.
func appendCheckpoint(dst []byte, s State) []byte {
	dst = binary.BigEndian.AppendUint32(dst, s.Epoch)
	dst = binary.BigEndian.AppendUint64(dst, s.Fingerprint)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Round)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Failures)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Recoveries)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Repairs)))
	dst = appendDemand(dst, s.Demand)
	dst = appendDemand(dst, s.BaseDemand)
	dst = appendPartition(dst, s.Partition)

	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Dead)))
	for _, n := range sortedNodes(s.Dead) {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(n)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(s.Dead[n])))
	}

	capacity := 0
	var dump []store.SeriesDump
	if s.Store != nil {
		capacity = s.Store.Capacity()
		dump = s.Store.Dump()
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(capacity))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(dump)))
	for _, sd := range dump {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(sd.Pair.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(sd.Pair.Attr)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(sd.Samples)))
		for _, smp := range sd.Samples {
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(smp.Round)))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(smp.Value))
		}
	}

	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Cooldowns)))
	for _, name := range sortedKeys(s.Cooldowns) {
		pairs := s.Cooldowns[name]
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(name)))
		dst = append(dst, name...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(pairs)))
		for _, p := range sortedPairs(pairs) {
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Node)))
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Attr)))
			dst = binary.BigEndian.AppendUint32(dst, uint32(int32(pairs[p])))
		}
	}

	// Trailing optional fields, in fixed order: the shard assignment,
	// then the forecasting-model snapshots. Readers that predate a field
	// stop before its bytes; readers that postdate it treat an exhausted
	// payload as "absent" — both directions of skew stay readable. A
	// later field forces every earlier one to be emitted (possibly
	// empty) so positions stay unambiguous.
	if len(s.Assignment) > 0 || len(s.Models) > 0 {
		dst = appendAssignment(dst, s.Assignment)
	}
	if len(s.Models) > 0 {
		dst = appendModels(dst, s.Models)
	}
	return dst
}

// appendModels encodes pair→model snapshots as count + (node, attr,
// kind, level, trend, seen) tuples in canonical pair order.
func appendModels(dst []byte, models map[model.Pair]predict.Snapshot) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(models)))
	for _, p := range sortedModelPairs(models) {
		sn := models[p]
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(p.Attr)))
		dst = append(dst, byte(sn.Kind))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(sn.Level))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(sn.Trend))
		dst = binary.BigEndian.AppendUint32(dst, sn.Seen)
	}
	return dst
}

func (r *reader) models() map[model.Pair]predict.Snapshot {
	n := int(r.u32())
	if r.err != nil || n > maxRecordSize {
		if r.err == nil {
			r.err = fmt.Errorf("%w: oversized model section", ErrCorrupt)
		}
		return nil
	}
	m := make(map[model.Pair]predict.Snapshot, n)
	for i := 0; i < n && r.err == nil; i++ {
		node := model.NodeID(r.i32())
		attr := model.AttrID(r.i32())
		sn := predict.Snapshot{
			Kind:  predict.Kind(r.u8()),
			Level: r.f64(),
			Trend: r.f64(),
			Seen:  r.u32(),
		}
		if r.err == nil {
			m[model.Pair{Node: node, Attr: attr}] = sn
		}
	}
	if r.err != nil {
		return nil
	}
	return m
}

// decodeCheckpoint parses a recCheckpoint payload.
func decodeCheckpoint(payload []byte) (State, error) {
	r := &reader{p: payload}
	s := State{
		Epoch:       r.u32(),
		Fingerprint: r.u64(),
		Round:       r.i32(),
		Failures:    r.i32(),
		Recoveries:  r.i32(),
		Repairs:     r.i32(),
	}
	s.Demand = r.demand()
	s.BaseDemand = r.demand()
	s.Partition = r.partition()

	nDead := int(r.u32())
	s.Dead = make(map[model.NodeID]int, nDead)
	for i := 0; i < nDead && r.err == nil; i++ {
		n := model.NodeID(r.i32())
		at := r.i32()
		if r.err == nil {
			s.Dead[n] = at
		}
	}

	capacity := int(r.u32())
	nSeries := int(r.u32())
	if r.err == nil {
		s.Store = store.New(capacity)
	}
	for i := 0; i < nSeries && r.err == nil; i++ {
		node := model.NodeID(r.i32())
		attr := model.AttrID(r.i32())
		nSamp := int(r.u32())
		for j := 0; j < nSamp && r.err == nil; j++ {
			round := r.i32()
			v := r.f64()
			if r.err == nil {
				s.Store.Observe(model.Pair{Node: node, Attr: attr}, round, v)
			}
		}
	}

	nCool := int(r.u32())
	s.Cooldowns = make(map[string]map[model.Pair]int, nCool)
	for i := 0; i < nCool && r.err == nil; i++ {
		name := r.str()
		nPairs := int(r.u32())
		m := make(map[model.Pair]int, nPairs)
		for j := 0; j < nPairs && r.err == nil; j++ {
			node := model.NodeID(r.i32())
			attr := model.AttrID(r.i32())
			at := r.i32()
			if r.err == nil {
				m[model.Pair{Node: node, Attr: attr}] = at
			}
		}
		if r.err == nil {
			s.Cooldowns[name] = m
		}
	}

	// Optional trailing fields: absent in older checkpoints.
	if r.err == nil && len(r.p) > 0 {
		s.Assignment = r.assignment()
		if len(s.Assignment) == 0 {
			s.Assignment = nil
		}
	}
	if r.err == nil && len(r.p) > 0 {
		s.Models = r.models()
	}
	if r.err != nil {
		return State{}, r.err
	}
	return s, nil
}

// Deterministic iteration orders keep checkpoint bytes reproducible.

func sortedNodes(m map[model.NodeID]int) []model.NodeID {
	out := make([]model.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[string]map[model.Pair]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAssignKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedModelPairs(m map[model.Pair]predict.Snapshot) []model.Pair {
	out := make([]model.Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	model.SortPairs(out)
	return out
}

func sortedPairs(m map[model.Pair]int) []model.Pair {
	out := make([]model.Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	model.SortPairs(out)
	return out
}
