package journal

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"remo/internal/model"
)

// Recovered is the result of reading a journal back.
type Recovered struct {
	// State is the session state as of the last intact record.
	State State
	// LastRound is the newest round with journaled samples (-1 when
	// none were logged since the checkpoint and the checkpoint itself
	// predates round 0).
	LastRound int
	// Segment is the checkpoint segment recovery started from.
	Segment int
	// Torn reports that a torn or corrupt WAL tail was truncated — the
	// signature of a crash mid-append.
	Torn bool
	// Replayed counts the WAL records applied on top of the checkpoint.
	Replayed int
}

// Recover loads the newest intact checkpoint in dir and replays its WAL
// on top. A corrupt newest checkpoint falls back to the previous
// segment; a corrupt WAL record truncates replay at that point (torn
// tail). Returns ErrNoJournal when dir holds no readable checkpoint.
func Recover(dir string) (*Recovered, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoJournal, dir)
	}
	// Newest first; fall back on corrupt checkpoints.
	var lastErr error
	for i := len(segs) - 1; i >= 0; i-- {
		rec, err := recoverSegment(dir, segs[i])
		if err == nil {
			return rec, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// listSegments returns the segment numbers with a ckpt file, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(name, "ckpt-"))
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// recoverSegment loads one checkpoint and replays its WAL.
func recoverSegment(dir string, seg int) (*Recovered, error) {
	raw, err := os.ReadFile(ckptName(dir, seg))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if !bytes.HasPrefix(raw, ckptMagic) {
		return nil, fmt.Errorf("%w: bad checkpoint magic (segment %d)", ErrCorrupt, seg)
	}
	kind, payload, _, ok := splitRecord(raw[len(ckptMagic):])
	if !ok || kind != recCheckpoint {
		return nil, fmt.Errorf("%w: unreadable checkpoint (segment %d)", ErrCorrupt, seg)
	}
	state, err := decodeCheckpoint(payload)
	if err != nil {
		return nil, fmt.Errorf("%w (segment %d)", err, seg)
	}
	rec := &Recovered{State: state, LastRound: state.Round, Segment: seg}

	wal, err := os.ReadFile(walName(dir, seg))
	if err != nil {
		if os.IsNotExist(err) {
			// Crash between checkpoint rename and WAL create: the
			// checkpoint alone is the recovered state.
			rec.Torn = true
			return rec, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	if !bytes.HasPrefix(wal, walMagic) {
		rec.Torn = len(wal) > 0
		return rec, nil
	}
	p := wal[len(walMagic):]
	for len(p) > 0 {
		kind, payload, rest, ok := splitRecord(p)
		if !ok {
			rec.Torn = true
			break
		}
		p = rest
		if err := rec.apply(kind, payload); err != nil {
			rec.Torn = true
			break
		}
		rec.Replayed++
	}
	return rec, nil
}

// apply replays one WAL record onto the recovered state.
func (rec *Recovered) apply(kind uint8, payload []byte) error {
	r := &reader{p: payload}
	s := &rec.State
	switch kind {
	case recEpoch:
		epoch := r.u32()
		fp := r.u64()
		d := r.demand()
		if r.err != nil {
			return r.err
		}
		s.Epoch, s.Fingerprint, s.Demand = epoch, fp, d
	case recTasks:
		d := r.demand()
		sets := r.partition()
		r.u64() // fingerprint: recEpoch is authoritative for State.Fingerprint
		r.u32() // kept
		r.u32() // rebuilt
		r.u32() // dropped
		if r.err != nil {
			return r.err
		}
		s.BaseDemand = d
		s.Partition = sets
	case recVerdict:
		node := model.NodeID(r.i32())
		declaredAt := r.i32()
		recovered := r.u8() == 1
		if r.err != nil {
			return r.err
		}
		if recovered {
			delete(s.Dead, node)
			s.Recoveries++
		} else {
			s.Dead[node] = declaredAt
			s.Failures++
		}
	case recAssign:
		m := r.assignment()
		if r.err != nil {
			return r.err
		}
		s.Assignment = m
	case recRepair:
		if _ = r.i32(); r.err != nil {
			return r.err
		}
		s.Repairs++
	case recSamples:
		round := r.i32()
		n := int(r.u32())
		if r.err != nil {
			return r.err
		}
		type obs struct {
			p model.Pair
			r int
			v float64
		}
		batch := make([]obs, 0, n)
		for i := 0; i < n; i++ {
			node := model.NodeID(r.i32())
			attr := model.AttrID(r.i32())
			sr := r.i32()
			v := r.f64()
			if r.err != nil {
				return r.err
			}
			batch = append(batch, obs{p: model.Pair{Node: node, Attr: attr}, r: sr, v: v})
		}
		// Only a fully intact record mutates the store: a torn tail must
		// not half-apply a round.
		for _, o := range batch {
			s.Store.Observe(o.p, o.r, o.v)
		}
		if round > rec.LastRound {
			rec.LastRound = round
		}
		if round > s.Round {
			s.Round = round
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	return nil
}

// IsDir reports whether path exists and is a directory — a flag-
// validation helper for callers taking a journal directory.
func IsDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
