package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"remo/internal/model"
	"remo/internal/predict"
	"remo/internal/store"
	"remo/internal/task"
)

// testState builds a representative session state: demand, a pruned
// base demand, a dead set, stored samples and trigger cooldowns.
func testState() State {
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(2, 1, 2)
	d.Set(2, 3, 0.5)
	base := d.Clone()
	base.Set(4, 1, 1)

	st := store.New(8)
	st.Observe(model.Pair{Node: 1, Attr: 1}, 3, 1.5)
	st.Observe(model.Pair{Node: 1, Attr: 1}, 4, 2.5)
	st.Observe(model.Pair{Node: 2, Attr: 3}, 4, -7)

	return State{
		Epoch:       3,
		Fingerprint: 0xDEADBEEFCAFE,
		Round:       4,
		Failures:    2,
		Recoveries:  1,
		Repairs:     3,
		Demand:      d,
		BaseDemand:  base,
		Dead:        map[model.NodeID]int{4: 2},
		Store:       st,
		Cooldowns: map[string]map[model.Pair]int{
			"hot": {{Node: 1, Attr: 1}: 4},
		},
	}
}

// sameDemand compares two demands pair by pair, weights included.
func sameDemand(t *testing.T, what string, got, want *task.Demand) {
	t.Helper()
	gp, wp := got.Pairs(), want.Pairs()
	if !reflect.DeepEqual(gp, wp) {
		t.Fatalf("%s pairs = %v, want %v", what, gp, wp)
	}
	for _, p := range wp {
		if g, w := got.Weight(p.Node, p.Attr), want.Weight(p.Node, p.Attr); g != w {
			t.Fatalf("%s weight(%v) = %v, want %v", what, p, g, w)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testState()
	w, err := Create(dir, Options{NoSync: true}, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := rec.State
	if got.Epoch != want.Epoch || got.Fingerprint != want.Fingerprint ||
		got.Round != want.Round || got.Failures != want.Failures ||
		got.Recoveries != want.Recoveries || got.Repairs != want.Repairs {
		t.Fatalf("scalars = %+v, want %+v", got, want)
	}
	sameDemand(t, "demand", got.Demand, want.Demand)
	sameDemand(t, "base demand", got.BaseDemand, want.BaseDemand)
	if !reflect.DeepEqual(got.Dead, want.Dead) {
		t.Fatalf("dead = %v, want %v", got.Dead, want.Dead)
	}
	if !reflect.DeepEqual(got.Store.Dump(), want.Store.Dump()) {
		t.Fatalf("store = %v, want %v", got.Store.Dump(), want.Store.Dump())
	}
	if got.Store.Capacity() != want.Store.Capacity() {
		t.Fatalf("capacity = %d, want %d", got.Store.Capacity(), want.Store.Capacity())
	}
	if !reflect.DeepEqual(got.Cooldowns, want.Cooldowns) {
		t.Fatalf("cooldowns = %v, want %v", got.Cooldowns, want.Cooldowns)
	}
	if rec.Torn || rec.Replayed != 0 {
		t.Fatalf("clean journal recovered torn=%v replayed=%d", rec.Torn, rec.Replayed)
	}
}

func TestWALReplay(t *testing.T) {
	dir := t.TempDir()
	initial := testState()
	w, err := Create(dir, Options{NoSync: true}, initial)
	if err != nil {
		t.Fatal(err)
	}

	newDemand := task.NewDemand()
	newDemand.Set(7, 2, 1)
	if err := w.AppendEpoch(9, 0xF00D, newDemand); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendVerdict(7, 6, false); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendVerdict(4, 8, true); err != nil { // node 4 recovers
		t.Fatal(err)
	}
	if err := w.AppendRepair(8); err != nil {
		t.Fatal(err)
	}
	newSets := []model.AttrSet{model.NewAttrSet(2)}
	if err := w.AppendTasks(newDemand, newSets, 0xF00D, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSamples(9, []SampleRec{
		{Pair: model.Pair{Node: 7, Attr: 2}, Round: 9, Value: 42},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := rec.State
	if st.Epoch != 9 || st.Fingerprint != 0xF00D {
		t.Fatalf("epoch/fingerprint = %d/%#x, want 9/0xF00D", st.Epoch, st.Fingerprint)
	}
	sameDemand(t, "installed demand", st.Demand, newDemand)
	sameDemand(t, "base demand", st.BaseDemand, newDemand)
	if st.Failures != initial.Failures+1 || st.Recoveries != initial.Recoveries+1 {
		t.Fatalf("failures/recoveries = %d/%d, want %d/%d",
			st.Failures, st.Recoveries, initial.Failures+1, initial.Recoveries+1)
	}
	if st.Repairs != initial.Repairs+1 {
		t.Fatalf("repairs = %d, want %d", st.Repairs, initial.Repairs+1)
	}
	if _, dead := st.Dead[4]; dead {
		t.Fatal("recovered node 4 still in dead set")
	}
	if at, dead := st.Dead[7]; !dead || at != 6 {
		t.Fatalf("dead[7] = %d,%v, want 6,true", at, dead)
	}
	if s, ok := st.Store.Latest(model.Pair{Node: 7, Attr: 2}); !ok || s.Value != 42 || s.Round != 9 {
		t.Fatalf("replayed sample = %+v,%v", s, ok)
	}
	if len(st.Partition) != 1 || !st.Partition[0].Equal(newSets[0]) {
		t.Fatalf("replayed partition = %v, want %v", st.Partition, newSets)
	}
	if rec.LastRound != 9 || st.Round != 9 {
		t.Fatalf("last round = %d/%d, want 9", rec.LastRound, st.Round)
	}
	if rec.Replayed != 6 || rec.Torn {
		t.Fatalf("replayed=%d torn=%v, want 6,false", rec.Replayed, rec.Torn)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true}, testState())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSamples(5, []SampleRec{
		{Pair: model.Pair{Node: 1, Attr: 1}, Round: 5, Value: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSamples(6, []SampleRec{
		{Pair: model.Pair{Node: 1, Attr: 1}, Round: 6, Value: 2},
	}); err != nil {
		t.Fatal(err)
	}
	seg := w.Segment()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop bytes off the WAL tail, simulating a
	// crash mid-append.
	wal := walName(dir, seg)
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn {
		t.Fatal("torn tail not reported")
	}
	if rec.Replayed != 1 || rec.LastRound != 5 {
		t.Fatalf("replayed=%d last=%d, want 1,5 (intact prefix only)", rec.Replayed, rec.LastRound)
	}
	// The torn round-6 record must not have half-applied.
	if s, ok := rec.State.Store.Latest(model.Pair{Node: 1, Attr: 1}); !ok || s.Round != 5 {
		t.Fatalf("latest after torn tail = %+v,%v, want round 5", s, ok)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true}, testState())
	if err != nil {
		t.Fatal(err)
	}
	older := w.Segment()
	newer := testState()
	newer.Epoch = 20
	if err := w.Checkpoint(newer); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the newest checkpoint: its CRC no longer
	// matches, so recovery must fall back to the previous segment.
	name := ckptName(dir, w.Segment())
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(ckptMagic)+recLenSize+10] ^= 0xFF
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segment != older {
		t.Fatalf("recovered segment %d, want fallback to %d", rec.Segment, older)
	}
	if rec.State.Epoch != 3 {
		t.Fatalf("fallback epoch = %d, want 3", rec.State.Epoch)
	}
}

func TestCreateSupersedesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true}, testState())
	if err != nil {
		t.Fatal(err)
	}
	firstSeg := w.Segment()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A second Create in the same directory (a resumed session) must
	// continue segment numbering so its checkpoint wins recovery.
	fresh := testState()
	fresh.Epoch = 99
	w2, err := Create(dir, Options{NoSync: true}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Segment() <= firstSeg {
		t.Fatalf("second journal at segment %d, want > %d", w2.Segment(), firstSeg)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State.Epoch != 99 {
		t.Fatalf("recovered epoch %d, want the superseding journal's 99", rec.State.Epoch)
	}
}

func TestRotationPrunesOldSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true, KeepSegments: 1, CheckpointEvery: 1}, testState())
	if err != nil {
		t.Fatal(err)
	}
	for round := 5; round < 15; round++ {
		due, err := w.AppendSamples(round, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !due {
			t.Fatalf("round %d: checkpoint not due at cadence 1", round)
		}
		if err := w.Checkpoint(testState()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("%d segments retained (%v), want <= live + 1 kept", len(segs), segs)
	}
	// Pruned segments are gone from disk, WALs included.
	entries, _ := os.ReadDir(dir)
	if len(entries) > 4 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("%d files retained: %v", len(entries), names)
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := Recover(dir); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("err = %v, want ErrNoJournal", err)
	}
	if _, err := Recover(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestAssignmentCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testState()
	want.Assignment = map[string]int{"a1": 0, "a2": 3, "a9": 1}
	w, err := Create(dir, Options{NoSync: true}, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.State.Assignment, want.Assignment) {
		t.Fatalf("assignment = %v, want %v", rec.State.Assignment, want.Assignment)
	}
}

func TestAssignmentAbsentStaysNil(t *testing.T) {
	// A checkpoint without an assignment encodes exactly the pre-sharding
	// layout; recovery must read it and leave Assignment nil.
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true}, testState())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State.Assignment != nil {
		t.Fatalf("assignment = %v, want nil", rec.State.Assignment)
	}
}

func TestAssignmentWALReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true}, testState())
	if err != nil {
		t.Fatal(err)
	}
	// The last logged assignment wins wholesale: each record is the full
	// map, not a delta.
	if err := w.AppendAssignment(map[string]int{"a1": 0, "a2": 1}); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a1": 2, "a2": 1, "a3": 0}
	if err := w.AppendAssignment(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.State.Assignment, want) {
		t.Fatalf("assignment = %v, want %v", rec.State.Assignment, want)
	}
	if rec.Replayed != 2 || rec.Torn {
		t.Fatalf("replayed=%d torn=%v, want 2,false", rec.Replayed, rec.Torn)
	}
}

func TestModelsCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testState()
	want.Models = map[model.Pair]predict.Snapshot{
		{Node: 1, Attr: 1}: {Kind: predict.Holt, Level: 42.5, Trend: -0.25, Seen: 17},
		{Node: 2, Attr: 3}: {Kind: predict.EWMA, Level: 7, Seen: 3},
	}
	w, err := Create(dir, Options{NoSync: true}, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.State.Models, want.Models) {
		t.Fatalf("models = %v, want %v", rec.State.Models, want.Models)
	}
	if rec.State.Assignment != nil {
		t.Fatalf("assignment = %v, want nil (forced-empty section decodes to nil)",
			rec.State.Assignment)
	}
}

func TestModelsWithAssignmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testState()
	want.Assignment = map[string]int{"a1": 0, "a2": 2}
	want.Models = map[model.Pair]predict.Snapshot{
		{Node: 4, Attr: 2}: {Kind: predict.Holt, Level: 9.75, Trend: 0.125, Seen: 8},
	}
	w, err := Create(dir, Options{NoSync: true}, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.State.Assignment, want.Assignment) {
		t.Fatalf("assignment = %v, want %v", rec.State.Assignment, want.Assignment)
	}
	if !reflect.DeepEqual(rec.State.Models, want.Models) {
		t.Fatalf("models = %v, want %v", rec.State.Models, want.Models)
	}
}

func TestModelsAbsentStaysNil(t *testing.T) {
	// A checkpoint without models encodes exactly the pre-suppression
	// layout; recovery must read it and leave Models nil.
	dir := t.TempDir()
	w, err := Create(dir, Options{NoSync: true}, testState())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State.Models != nil {
		t.Fatalf("models = %v, want nil", rec.State.Models)
	}
}
