package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"remo/internal/model"
	"remo/internal/task"
)

// Options tunes the journal writer. The zero value selects the
// defaults.
type Options struct {
	// CheckpointEvery is how many AppendSamples calls (rounds) elapse
	// between automatic checkpoints (default 16; negative disables
	// automatic checkpointing).
	CheckpointEvery int
	// SegmentBytes rotates the WAL into a fresh checkpointed segment
	// once it grows past this size (default 1 MiB; checkpoint cadence
	// usually rotates first).
	SegmentBytes int
	// KeepSegments is how many sealed segments to retain besides the
	// live one (default 2).
	KeepSegments int
	// NoSync skips the per-append fsync. Faster, but a host crash (as
	// opposed to a process crash) can lose the unsynced tail.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 16
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.KeepSegments <= 0 {
		o.KeepSegments = 2
	}
	return o
}

// Writer appends durable session state to a journal directory. It is
// not safe for concurrent use; the monitor calls it from its
// coordinator goroutine only.
type Writer struct {
	dir  string
	opts Options

	seg     int
	wal     *os.File
	walSize int
	// rounds counts AppendSamples calls since the last checkpoint.
	rounds int
	// latest mirrors the last checkpointed state so rotation can
	// re-snapshot without asking the caller (the caller refreshes it via
	// Checkpoint).
	buf []byte
}

func ckptName(dir string, seg int) string { return filepath.Join(dir, fmt.Sprintf("ckpt-%d", seg)) }
func walName(dir string, seg int) string  { return filepath.Join(dir, fmt.Sprintf("wal-%d", seg)) }

// Create opens a journal in dir (created if missing) and seals the
// initial state as a fresh checkpoint. An existing journal in dir is
// superseded, not clobbered: numbering continues after its newest
// segment (so the new checkpoint is always the one recovery finds) and
// the old segments are pruned as rotation proceeds.
func Create(dir string, opts Options, initial State) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	start := -1
	if segs, err := listSegments(dir); err == nil && len(segs) > 0 {
		start = segs[len(segs)-1]
	}
	w := &Writer{dir: dir, opts: opts.withDefaults(), seg: start}
	if err := w.rotate(initial); err != nil {
		return nil, err
	}
	return w, nil
}

// writeCheckpoint writes ckpt-seg atomically (temp file + rename).
func (w *Writer) writeCheckpoint(seg int, s State) error {
	w.buf = append(w.buf[:0], ckptMagic...)
	w.buf = appendRecord(w.buf, recCheckpoint, appendCheckpoint(nil, s))
	tmp := ckptName(w.dir, seg) + ".tmp"
	if err := os.WriteFile(tmp, w.buf, 0o644); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if !w.opts.NoSync {
		if f, err := os.Open(tmp); err == nil {
			_ = f.Sync()
			_ = f.Close()
		}
	}
	if err := os.Rename(tmp, ckptName(w.dir, seg)); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	return nil
}

// rotate seals a new segment: checkpoint, fresh WAL, pruned history.
func (w *Writer) rotate(s State) error {
	next := w.seg + 1
	if err := w.writeCheckpoint(next, s); err != nil {
		return err
	}
	wal, err := os.Create(walName(w.dir, next))
	if err != nil {
		return fmt.Errorf("journal: wal: %w", err)
	}
	if _, err := wal.Write(walMagic); err != nil {
		_ = wal.Close()
		return fmt.Errorf("journal: wal: %w", err)
	}
	if w.wal != nil {
		_ = w.wal.Close()
	}
	w.wal = wal
	w.walSize = len(walMagic)
	w.seg = next
	w.rounds = 0

	for old := next - w.opts.KeepSegments - 1; old >= 0; old-- {
		e1 := os.Remove(ckptName(w.dir, old))
		e2 := os.Remove(walName(w.dir, old))
		if e1 != nil && e2 != nil {
			break // history already pruned below this point
		}
	}
	return nil
}

// append frames and writes one WAL record.
func (w *Writer) append(kind uint8, payload []byte) error {
	if w.wal == nil {
		return fmt.Errorf("journal: writer closed")
	}
	w.buf = appendRecord(w.buf[:0], kind, payload)
	n, err := w.wal.Write(w.buf)
	w.walSize += n
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !w.opts.NoSync {
		if err := w.wal.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// AppendEpoch logs a plan install: the new epoch, the installed
// forest's fingerprint, and the installed demand.
func (w *Writer) AppendEpoch(epoch uint32, fingerprint uint64, installed *task.Demand) error {
	return w.append(recEpoch, appendEpoch(nil, epoch, fingerprint, installed))
}

// AppendTasks logs a task mutation: the new base (user-submitted)
// demand, the partition behind the replanned topology, the installed
// forest's fingerprint, and the swap's tree-level diff counts. The
// partition is what lets a cold resume rebuild the exact pre-crash
// forest; the fingerprint and diff document the swap for audits.
func (w *Writer) AppendTasks(base *task.Demand, sets []model.AttrSet, fingerprint uint64, kept, rebuilt, dropped int) error {
	return w.append(recTasks, appendTasks(nil, base, sets, fingerprint, kept, rebuilt, dropped))
}

// AppendVerdict logs a failure-detector verdict.
func (w *Writer) AppendVerdict(node model.NodeID, declaredAt int, recovered bool) error {
	return w.append(recVerdict, appendVerdict(nil, node, declaredAt, recovered))
}

// AppendAssignment logs the dispatcher's tree→shard map after a
// placement decision. The full map is logged, not a delta: placement
// decisions are rare (installs, shard deaths, recoveries) and a
// self-contained record lets recovery adopt the last one wholesale.
func (w *Writer) AppendAssignment(assign map[string]int) error {
	return w.append(recAssign, appendAssignment(nil, assign))
}

// AppendRepair logs one topology repair at the given round.
func (w *Writer) AppendRepair(round int) error {
	return w.append(recRepair, binary.BigEndian.AppendUint32(nil, uint32(int32(round))))
}

// AppendSamples logs the values the collector accepted in one round
// and, at the configured cadence or WAL size, asks for nothing more:
// the caller drives checkpoints via Checkpoint, which this method
// signals by returning true.
func (w *Writer) AppendSamples(round int, recs []SampleRec) (checkpointDue bool, err error) {
	if err := w.append(recSamples, appendSamples(nil, round, recs)); err != nil {
		return false, err
	}
	w.rounds++
	due := (w.opts.CheckpointEvery > 0 && w.rounds >= w.opts.CheckpointEvery) ||
		w.walSize >= w.opts.SegmentBytes
	return due, nil
}

// Checkpoint seals the current state into a fresh segment and prunes
// old ones.
func (w *Writer) Checkpoint(s State) error {
	if w.wal == nil {
		return fmt.Errorf("journal: writer closed")
	}
	return w.rotate(s)
}

// Segment returns the live segment number.
func (w *Writer) Segment() int { return w.seg }

// Close syncs and closes the live WAL. The journal stays recoverable.
func (w *Writer) Close() error {
	if w.wal == nil {
		return nil
	}
	err := w.wal.Sync()
	if cerr := w.wal.Close(); err == nil {
		err = cerr
	}
	w.wal = nil
	return err
}
