package task

import (
	"errors"
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
)

func TestManagerDeduplicates(t *testing.T) {
	// The paper's §2.2 example: t1 and t2 both monitor cpu_utilization on
	// node b; node b must report it only once.
	const cpu = model.AttrID(1)
	a, b, c := model.NodeID(1), model.NodeID(2), model.NodeID(3)

	m := NewManager()
	if err := m.Add(model.Task{Name: "t1", Attrs: []model.AttrID{cpu}, Nodes: []model.NodeID{a, b}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(model.Task{Name: "t2", Attrs: []model.AttrID{cpu}, Nodes: []model.NodeID{b, c}}); err != nil {
		t.Fatal(err)
	}

	raw, distinct := m.DedupStats()
	if raw != 4 || distinct != 3 {
		t.Fatalf("DedupStats = (%d, %d), want (4, 3)", raw, distinct)
	}
	d := m.Demand()
	if d.PairCount() != 3 {
		t.Fatalf("PairCount = %d, want 3", d.PairCount())
	}
	for _, n := range []model.NodeID{a, b, c} {
		if d.Weight(n, cpu) != 1 {
			t.Fatalf("Weight(%v, cpu) = %v, want 1", n, d.Weight(n, cpu))
		}
	}
}

func TestManagerDuplicateName(t *testing.T) {
	m := NewManager()
	task := model.Task{Name: "t", Attrs: []model.AttrID{1}, Nodes: []model.NodeID{1}}
	if err := m.Add(task); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(task); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("second Add error = %v, want ErrDuplicateTask", err)
	}
}

func TestManagerUpdateAndRemove(t *testing.T) {
	m := NewManager()
	task := model.Task{Name: "t", Attrs: []model.AttrID{1}, Nodes: []model.NodeID{1}}
	if err := m.Update(task); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Update unknown error = %v", err)
	}
	if err := m.Add(task); err != nil {
		t.Fatal(err)
	}
	task.Attrs = []model.AttrID{1, 2}
	if err := m.Update(task); err != nil {
		t.Fatal(err)
	}
	if got := m.Demand().PairCount(); got != 2 {
		t.Fatalf("after update PairCount = %d, want 2", got)
	}
	if err := m.Remove("t"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("t"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("double Remove error = %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestManagerTasksSortedAndCopied(t *testing.T) {
	m := NewManager()
	for _, name := range []string{"zz", "aa", "mm"} {
		if err := m.Add(model.Task{Name: name, Attrs: []model.AttrID{1}, Nodes: []model.NodeID{1}}); err != nil {
			t.Fatal(err)
		}
	}
	tasks := m.Tasks()
	if tasks[0].Name != "aa" || tasks[1].Name != "mm" || tasks[2].Name != "zz" {
		t.Fatalf("Tasks order = %v", tasks)
	}
	tasks[0].Attrs[0] = 99
	if m.Demand().Weight(1, 99) != 0 {
		t.Fatal("returned task shares storage with the manager")
	}
}

func TestManagerFiltersUnobservable(t *testing.T) {
	sys, err := model.NewSystem(100, cost.Default(), []model.Node{
		{ID: 1, Capacity: 10, Attrs: []model.AttrID{1}},
		{ID: 2, Capacity: 10, Attrs: []model.AttrID{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(WithSystem(sys))
	if err := m.Add(model.Task{Name: "t", Attrs: []model.AttrID{1, 2}, Nodes: []model.NodeID{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	d := m.Demand()
	// Node 1 observes only attr 1; node 3 is not in the system at all.
	if d.PairCount() != 3 {
		t.Fatalf("PairCount = %d, want 3 (n1a1, n2a1, n2a2)", d.PairCount())
	}
	if d.Has(1, 2) || d.Has(3, 1) {
		t.Fatal("unobservable pairs demanded")
	}
}

func TestDemandBasics(t *testing.T) {
	d := NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 0.5)
	d.Set(2, 2, 1)

	if got := d.Universe(); !got.Equal(model.NewAttrSet(1, 2)) {
		t.Fatalf("Universe = %v", got)
	}
	set12 := model.NewAttrSet(1, 2)
	if got := d.LocalWeight(1, set12); got != 1.5 {
		t.Fatalf("LocalWeight(1) = %v, want 1.5", got)
	}
	if got := d.Participants(model.NewAttrSet(2)); len(got) != 2 {
		t.Fatalf("Participants(a2) = %v", got)
	}
	if got := d.PairCountIn(model.NewAttrSet(2)); got != 2 {
		t.Fatalf("PairCountIn(a2) = %d", got)
	}
	d.Remove(1, 2)
	if d.Has(1, 2) {
		t.Fatal("Remove left the pair")
	}
	d.Remove(1, 1)
	if nodes := d.Nodes(); len(nodes) != 1 || nodes[0] != 2 {
		t.Fatalf("Nodes after removals = %v", nodes)
	}
}

func TestDemandCloneIsDeep(t *testing.T) {
	d := NewDemand()
	d.Set(1, 1, 1)
	c := d.Clone()
	c.Set(1, 2, 1)
	if d.Has(1, 2) {
		t.Fatal("Clone shares storage")
	}
}

func TestDiff(t *testing.T) {
	oldD := NewDemand()
	oldD.Set(1, 1, 1)
	oldD.Set(2, 1, 1)
	oldD.Set(2, 2, 1)

	newD := NewDemand()
	newD.Set(1, 1, 1)   // unchanged
	newD.Set(2, 2, 0.5) // weight changed
	newD.Set(3, 3, 1)   // added

	ch := Diff(oldD, newD)
	if len(ch.Added) != 1 || ch.Added[0] != (model.Pair{Node: 3, Attr: 3}) {
		t.Fatalf("Added = %v", ch.Added)
	}
	if len(ch.Removed) != 1 || ch.Removed[0] != (model.Pair{Node: 2, Attr: 1}) {
		t.Fatalf("Removed = %v", ch.Removed)
	}
	if !ch.AffectedAttrs.Equal(model.NewAttrSet(1, 2, 3)) {
		t.Fatalf("AffectedAttrs = %v", ch.AffectedAttrs)
	}
	if ch.Empty() {
		t.Fatal("Empty() = true for a non-empty change")
	}
	if !Diff(oldD, oldD.Clone()).Empty() {
		t.Fatal("Diff(x, x) not empty")
	}
}
