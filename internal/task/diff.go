package task

import (
	"remo/internal/model"
)

// Change describes the difference between two demands, used by the
// adaptation planner to determine which monitoring trees are affected by
// a batch of task updates.
type Change struct {
	// Added are pairs demanded by the new task set but not the old one.
	Added []model.Pair
	// Removed are pairs demanded by the old task set but not the new one.
	Removed []model.Pair
	// AffectedAttrs is the set of attributes with at least one added or
	// removed pair; trees delivering any of these attributes must be
	// rebuilt.
	AffectedAttrs model.AttrSet
}

// Empty reports whether the change carries no pair additions or removals.
func (c Change) Empty() bool {
	return len(c.Added) == 0 && len(c.Removed) == 0
}

// Diff computes the change from demand old to demand new. Weight-only
// changes (same pair, different weight) are reported as affected
// attributes without pair additions or removals.
func Diff(oldD, newD *Demand) Change {
	var change Change
	affected := make(map[model.AttrID]struct{})

	for _, p := range newD.Pairs() {
		if !oldD.Has(p.Node, p.Attr) {
			change.Added = append(change.Added, p)
			affected[p.Attr] = struct{}{}
		} else if oldD.Weight(p.Node, p.Attr) != newD.Weight(p.Node, p.Attr) {
			affected[p.Attr] = struct{}{}
		}
	}
	for _, p := range oldD.Pairs() {
		if !newD.Has(p.Node, p.Attr) {
			change.Removed = append(change.Removed, p)
			affected[p.Attr] = struct{}{}
		}
	}

	attrs := make([]model.AttrID, 0, len(affected))
	for a := range affected {
		attrs = append(attrs, a)
	}
	change.AffectedAttrs = model.NewAttrSet(attrs...)
	return change
}
