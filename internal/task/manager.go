// Package task implements REMO's task manager: it ingests application
// state monitoring tasks, expands them into node-attribute pairs,
// eliminates duplicated pairs across tasks, and tracks task-set changes
// for the runtime adaptation planner.
package task

import (
	"errors"
	"fmt"
	"sort"

	"remo/internal/model"
)

// Errors returned by Manager operations.
var (
	ErrDuplicateTask = errors.New("task: duplicate task name")
	ErrUnknownTask   = errors.New("task: unknown task name")
)

// Manager holds the current set of monitoring tasks. It deduplicates
// node-attribute pairs across tasks: if two tasks both collect
// cpu_utilization from node b, node b reports the value once and the data
// collector fans it out to both tasks.
//
// Manager is not safe for concurrent use.
type Manager struct {
	tasks map[string]model.Task
	// system, when set, filters out pairs whose attribute is not
	// observable at the node.
	system *model.System
	// resolve maps alias attributes (reliability replicas) to the
	// original attribute for observability checks.
	resolve func(model.AttrID) model.AttrID
}

// Option configures a Manager.
type Option func(*Manager)

// WithSystem makes the manager drop node-attribute pairs whose attribute
// is not locally observable at the node, mirroring REMO's assumption that
// attribute values are produced by node-local tools.
func WithSystem(s *model.System) Option {
	return func(m *Manager) { m.system = s }
}

// WithAliasResolver makes observability checks resolve alias attribute
// ids (reliability replicas) to their original attribute first.
func WithAliasResolver(resolve func(model.AttrID) model.AttrID) Option {
	return func(m *Manager) { m.resolve = resolve }
}

// NewManager returns an empty task manager.
func NewManager(opts ...Option) *Manager {
	m := &Manager{tasks: make(map[string]model.Task)}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Add registers a new task. The task name must be unique.
func (m *Manager) Add(t model.Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, exists := m.tasks[t.Name]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, t.Name)
	}
	m.tasks[t.Name] = t.Clone()
	return nil
}

// Update replaces an existing task (task modification in the paper's
// terms: users frequently change the attribute set of a task while
// debugging).
func (m *Manager) Update(t model.Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, exists := m.tasks[t.Name]; !exists {
		return fmt.Errorf("%w: %q", ErrUnknownTask, t.Name)
	}
	m.tasks[t.Name] = t.Clone()
	return nil
}

// Remove deletes a task by name.
func (m *Manager) Remove(name string) error {
	if _, exists := m.tasks[name]; !exists {
		return fmt.Errorf("%w: %q", ErrUnknownTask, name)
	}
	delete(m.tasks, name)
	return nil
}

// Len returns the number of registered tasks.
func (m *Manager) Len() int { return len(m.tasks) }

// Tasks returns the registered tasks ordered by name.
func (m *Manager) Tasks() []model.Task {
	names := make([]string, 0, len(m.tasks))
	for n := range m.tasks {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]model.Task, 0, len(names))
	for _, n := range names {
		out = append(out, m.tasks[n].Clone())
	}
	return out
}

// Demand deduplicates all registered tasks into a Demand: the set of
// distinct node-attribute pairs to collect, each with unit weight.
func (m *Manager) Demand() *Demand {
	d := NewDemand()
	for _, t := range m.tasks {
		for _, n := range t.Nodes {
			for _, a := range t.Attrs {
				if !m.observable(n, a) {
					continue
				}
				d.Set(n, a, 1)
			}
		}
	}
	return d
}

// DedupStats reports how many raw pairs the task set expands to and how
// many distinct pairs remain after duplicate elimination.
func (m *Manager) DedupStats() (raw, distinct int) {
	d := NewDemand()
	for _, t := range m.tasks {
		for _, n := range t.Nodes {
			for _, a := range t.Attrs {
				if !m.observable(n, a) {
					continue
				}
				raw++
				d.Set(n, a, 1)
			}
		}
	}
	return raw, d.PairCount()
}

func (m *Manager) observable(n model.NodeID, a model.AttrID) bool {
	if m.system == nil {
		return true
	}
	node, ok := m.system.Node(n)
	if !ok {
		return false
	}
	if m.resolve != nil {
		a = m.resolve(a)
	}
	return node.HasAttr(a)
}
