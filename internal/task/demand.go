package task

import (
	"remo/internal/model"
)

// Demand is the deduplicated monitoring workload: for every node, the set
// of attributes it must report, each with a weight. A weight of 1 is one
// full-rate value per collection round; the heterogeneous-update-frequency
// extension lowers weights of values that piggyback at a fraction of the
// node's fastest rate (a value updated at half the maximum frequency
// contributes 0.5 to message payload cost on average).
type Demand struct {
	perNode map[model.NodeID]map[model.AttrID]float64
}

// NewDemand returns an empty demand.
func NewDemand() *Demand {
	return &Demand{perNode: make(map[model.NodeID]map[model.AttrID]float64)}
}

// Set records that node n must report attribute a with the given weight,
// replacing any previous weight.
func (d *Demand) Set(n model.NodeID, a model.AttrID, weight float64) {
	m, ok := d.perNode[n]
	if !ok {
		m = make(map[model.AttrID]float64)
		d.perNode[n] = m
	}
	m[a] = weight
}

// Remove drops the pair (n, a).
func (d *Demand) Remove(n model.NodeID, a model.AttrID) {
	if m, ok := d.perNode[n]; ok {
		delete(m, a)
		if len(m) == 0 {
			delete(d.perNode, n)
		}
	}
}

// Weight returns the weight of pair (n, a), or 0 if the pair is not
// demanded.
func (d *Demand) Weight(n model.NodeID, a model.AttrID) float64 {
	return d.perNode[n][a]
}

// Has reports whether pair (n, a) is demanded.
func (d *Demand) Has(n model.NodeID, a model.AttrID) bool {
	_, ok := d.perNode[n][a]
	return ok
}

// Nodes returns the ids of all nodes with at least one demanded
// attribute, ascending.
func (d *Demand) Nodes() []model.NodeID {
	ids := make([]model.NodeID, 0, len(d.perNode))
	for n := range d.perNode {
		ids = append(ids, n)
	}
	model.SortNodes(ids)
	return ids
}

// AttrsOf returns the attributes demanded at node n as a set.
func (d *Demand) AttrsOf(n model.NodeID) model.AttrSet {
	m := d.perNode[n]
	attrs := make([]model.AttrID, 0, len(m))
	for a := range m {
		attrs = append(attrs, a)
	}
	return model.NewAttrSet(attrs...)
}

// Universe returns the union of demanded attributes across all nodes —
// the set the partition planner partitions.
func (d *Demand) Universe() model.AttrSet {
	var attrs []model.AttrID
	seen := make(map[model.AttrID]struct{})
	for _, m := range d.perNode {
		for a := range m {
			if _, dup := seen[a]; !dup {
				seen[a] = struct{}{}
				attrs = append(attrs, a)
			}
		}
	}
	return model.NewAttrSet(attrs...)
}

// Participants returns the nodes demanding at least one attribute of set,
// ascending — the node set D_k of the monitoring tree for set.
func (d *Demand) Participants(set model.AttrSet) []model.NodeID {
	var ids []model.NodeID
	for n, m := range d.perNode {
		for a := range m {
			if set.Contains(a) {
				ids = append(ids, n)
				break
			}
		}
	}
	model.SortNodes(ids)
	return ids
}

// LocalAttrs returns the attributes of set demanded at node n, ascending.
func (d *Demand) LocalAttrs(n model.NodeID, set model.AttrSet) []model.AttrID {
	m := d.perNode[n]
	var attrs []model.AttrID
	for a := range m {
		if set.Contains(a) {
			attrs = append(attrs, a)
		}
	}
	model.SortAttrs(attrs)
	return attrs
}

// LocalWeight returns the summed weight of node n's demanded attributes
// restricted to set — x_i of the tree construction problem.
func (d *Demand) LocalWeight(n model.NodeID, set model.AttrSet) float64 {
	var sum float64
	for a, w := range d.perNode[n] {
		if set.Contains(a) {
			sum += w
		}
	}
	return sum
}

// PairCount returns the number of distinct demanded pairs.
func (d *Demand) PairCount() int {
	var c int
	for _, m := range d.perNode {
		c += len(m)
	}
	return c
}

// PairCountIn returns the number of distinct demanded pairs whose
// attribute is in set.
func (d *Demand) PairCountIn(set model.AttrSet) int {
	var c int
	for _, m := range d.perNode {
		for a := range m {
			if set.Contains(a) {
				c++
			}
		}
	}
	return c
}

// Pairs returns all demanded pairs ordered by node then attribute.
func (d *Demand) Pairs() []model.Pair {
	pairs := make([]model.Pair, 0, d.PairCount())
	for n, m := range d.perNode {
		for a := range m {
			pairs = append(pairs, model.Pair{Node: n, Attr: a})
		}
	}
	model.SortPairs(pairs)
	return pairs
}

// Clone returns a deep copy of the demand.
func (d *Demand) Clone() *Demand {
	c := NewDemand()
	for n, m := range d.perNode {
		cm := make(map[model.AttrID]float64, len(m))
		for a, w := range m {
			cm[a] = w
		}
		c.perNode[n] = cm
	}
	return c
}
