package task

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"remo/internal/model"
)

// genDemand builds a bounded random demand for property tests.
func genDemand(r *rand.Rand) *Demand {
	d := NewDemand()
	n := r.Intn(30)
	for i := 0; i < n; i++ {
		d.Set(
			model.NodeID(r.Intn(8)+1),
			model.AttrID(r.Intn(6)+1),
			math.Round(r.Float64()*100)/100,
		)
	}
	return d
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genDemand(r))
			}
		},
		Rand: rand.New(rand.NewSource(seed)),
	}
}

func TestDemandPairCountMatchesPairs(t *testing.T) {
	f := func(d *Demand) bool {
		return d.PairCount() == len(d.Pairs())
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

func TestDemandUniverseCoversAllPairs(t *testing.T) {
	f := func(d *Demand) bool {
		u := d.Universe()
		for _, p := range d.Pairs() {
			if !u.Contains(p.Attr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

func TestDemandParticipantsConsistent(t *testing.T) {
	// A node is a participant of a set iff it has at least one local
	// attribute in it, and LocalWeight is positive exactly then (weights
	// are positive in this generator... zero weights possible, so only
	// check the containment direction).
	f := func(d *Demand) bool {
		u := d.Universe()
		parts := d.Participants(u)
		partSet := make(map[model.NodeID]bool, len(parts))
		for _, n := range parts {
			partSet[n] = true
		}
		for _, n := range d.Nodes() {
			if !partSet[n] {
				return false
			}
			if len(d.LocalAttrs(n, u)) == 0 {
				return false
			}
		}
		return len(parts) == len(d.Nodes())
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestDemandCloneEqual(t *testing.T) {
	f := func(d *Demand) bool {
		c := d.Clone()
		if c.PairCount() != d.PairCount() {
			return false
		}
		for _, p := range d.Pairs() {
			if c.Weight(p.Node, p.Attr) != d.Weight(p.Node, p.Attr) {
				return false
			}
		}
		return Diff(d, c).Empty()
	}
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}

func TestDiffSymmetry(t *testing.T) {
	f := func(a, b *Demand) bool {
		ab := Diff(a, b)
		ba := Diff(b, a)
		if len(ab.Added) != len(ba.Removed) || len(ab.Removed) != len(ba.Added) {
			return false
		}
		return ab.AffectedAttrs.Equal(ba.AffectedAttrs)
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Fatal(err)
	}
}

func TestDiffTriangleCoverage(t *testing.T) {
	// Applying a diff's additions and removals to the old demand yields
	// a demand with the new demand's pairs.
	f := func(a, b *Demand) bool {
		ch := Diff(a, b)
		c := a.Clone()
		for _, p := range ch.Removed {
			c.Remove(p.Node, p.Attr)
		}
		for _, p := range ch.Added {
			c.Set(p.Node, p.Attr, b.Weight(p.Node, p.Attr))
		}
		cp, bp := c.Pairs(), b.Pairs()
		if len(cp) != len(bp) {
			return false
		}
		for i := range cp {
			if cp[i] != bp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Fatal(err)
	}
}

func TestPairCountInPartition(t *testing.T) {
	// Summing PairCountIn over a partition of the universe equals the
	// total pair count.
	f := func(d *Demand) bool {
		u := d.Universe()
		var sum int
		for _, a := range u.Attrs() {
			sum += d.PairCountIn(model.NewAttrSet(a))
		}
		return sum == d.PairCount()
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Fatal(err)
	}
}
