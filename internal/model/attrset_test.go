package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAttrSetDedupsAndSorts(t *testing.T) {
	s := NewAttrSet(3, 1, 2, 3, 1)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Attrs()
	want := []AttrID{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attrs = %v, want %v", got, want)
		}
	}
}

func TestAttrSetContains(t *testing.T) {
	s := NewAttrSet(2, 4, 6, 8)
	for _, a := range []AttrID{2, 4, 6, 8} {
		if !s.Contains(a) {
			t.Errorf("Contains(%v) = false, want true", a)
		}
	}
	for _, a := range []AttrID{1, 3, 5, 7, 9} {
		if s.Contains(a) {
			t.Errorf("Contains(%v) = true, want false", a)
		}
	}
}

func TestAttrSetUnion(t *testing.T) {
	a := NewAttrSet(1, 3, 5)
	b := NewAttrSet(2, 3, 4)
	u := a.Union(b)
	want := NewAttrSet(1, 2, 3, 4, 5)
	if !u.Equal(want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	// Inputs unchanged.
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatal("Union mutated its inputs")
	}
}

func TestAttrSetRemove(t *testing.T) {
	s := NewAttrSet(1, 2, 3)
	r := s.Remove(2)
	if !r.Equal(NewAttrSet(1, 3)) {
		t.Fatalf("Remove(2) = %v", r)
	}
	if !s.Remove(9).Equal(s) {
		t.Fatal("removing an absent attribute changed the set")
	}
	if s.Len() != 3 {
		t.Fatal("Remove mutated the receiver")
	}
}

func TestAttrSetIntersect(t *testing.T) {
	a := NewAttrSet(1, 2, 3, 4)
	b := NewAttrSet(3, 4, 5)
	if got := a.Intersect(b); !got.Equal(NewAttrSet(3, 4)) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.IntersectsAny(b) {
		t.Fatal("IntersectsAny = false, want true")
	}
	if a.IntersectsAny(NewAttrSet(9)) {
		t.Fatal("IntersectsAny(disjoint) = true")
	}
}

func TestAttrSetKey(t *testing.T) {
	if got := NewAttrSet(3, 1, 2).Key(); got != "1,2,3" {
		t.Fatalf("Key = %q, want 1,2,3", got)
	}
	if got := (AttrSet{}).Key(); got != "" {
		t.Fatalf("empty Key = %q", got)
	}
	// Keys are canonical: equal sets share keys regardless of build
	// order.
	if NewAttrSet(5, 7).Key() != NewAttrSet(7, 5).Key() {
		t.Fatal("keys differ for equal sets")
	}
}

func TestAttrSetEmptyZeroValue(t *testing.T) {
	var s AttrSet
	if !s.Empty() || s.Len() != 0 || s.Contains(1) {
		t.Fatal("zero-value AttrSet is not empty")
	}
	if !s.Union(NewAttrSet(1)).Equal(NewAttrSet(1)) {
		t.Fatal("union with zero value broken")
	}
}

// randSet generates a bounded random attribute set for property tests.
func randSet(r *rand.Rand) AttrSet {
	n := r.Intn(8)
	attrs := make([]AttrID, n)
	for i := range attrs {
		attrs[i] = AttrID(r.Intn(12))
	}
	return NewAttrSet(attrs...)
}

func TestAttrSetUnionProperties(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randSet(r))
			vals[1] = reflect.ValueOf(randSet(r))
		},
	}
	commutative := func(a, b AttrSet) bool {
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	idempotent := func(a, b AttrSet) bool {
		u := a.Union(b)
		return u.Union(a).Equal(u)
	}
	if err := quick.Check(idempotent, cfg); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
	containsAll := func(a, b AttrSet) bool {
		u := a.Union(b)
		for _, x := range a.Attrs() {
			if !u.Contains(x) {
				return false
			}
		}
		for _, x := range b.Attrs() {
			if !u.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(containsAll, cfg); err != nil {
		t.Errorf("union loses members: %v", err)
	}
}

func TestAttrSetRemoveThenUnionRestores(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randSet(r))
		},
	}
	f := func(s AttrSet) bool {
		for _, a := range s.Attrs() {
			if !s.Remove(a).Union(NewAttrSet(a)).Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
