package model

import (
	"errors"
	"fmt"
	"sort"

	"remo/internal/cost"
)

// Node describes one monitoring node: its capacity budget for processing
// monitoring messages and the set of attributes observable locally.
type Node struct {
	ID NodeID
	// Capacity is b_i, the resource budget the node may spend per
	// collection round on sending and receiving monitoring messages.
	Capacity float64
	// Attrs lists the attribute types observable at this node. A task may
	// only request attributes a node actually observes; the task manager
	// drops pairs for attributes the node does not have.
	Attrs []AttrID
	// Region labels the node's failure and pricing domain (a datacenter
	// or WAN region). Empty means the default region: an unlabeled
	// system collapses to one region and topology pricing is a no-op.
	Region string
}

// HasAttr reports whether attribute a is observable at the node.
func (n Node) HasAttr(a AttrID) bool {
	for _, x := range n.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the node.
func (n Node) Clone() Node {
	return Node{ID: n.ID, Capacity: n.Capacity, Attrs: append([]AttrID(nil), n.Attrs...), Region: n.Region}
}

// System describes the monitored deployment: the monitoring nodes, the
// central collector's capacity, and the message cost model. REMO targets
// datacenter-like environments where any two nodes communicate at similar
// cost, so the system carries no network topology — only per-node
// capacities matter.
type System struct {
	// CentralCapacity is the resource budget of the central data
	// collector (it pays receive costs for every tree root).
	CentralCapacity float64
	// Nodes are the monitoring nodes. IDs must be positive and unique.
	Nodes []Node
	// Cost is the message cost model shared by all nodes.
	Cost cost.Model
	// Distance optionally models non-uniform communication cost (§3.3:
	// peer-to-peer overlays, sensor networks): sending a message from a
	// to b costs Distance(a, b) times its endpoint cost. nil means the
	// datacenter assumption — every pair communicates at cost factor 1.
	// Receive cost is always the endpoint cost (forwarding is charged to
	// the sender's side of the path).
	Distance func(a, b NodeID) float64
	// CentralRegion is the region hosting the central collector (and,
	// in sharded sessions, the whole collector tier). Empty means the
	// default region.
	CentralRegion string
	// Topology, when set via ApplyTopology, records the region-pair edge
	// prices Distance was derived from, so verifiers can re-price edges
	// independently of the installed Distance closure.
	Topology *cost.Topology

	index map[NodeID]int
}

// Errors returned by System.Validate.
var (
	ErrDuplicateNode = errors.New("model: duplicate node id")
	ErrCentralInUse  = errors.New("model: node uses the central id")
	ErrBadCapacity   = errors.New("model: capacity must be non-negative")
)

// NewSystem builds a validated system.
func NewSystem(centralCapacity float64, costModel cost.Model, nodes []Node) (*System, error) {
	s := &System{
		CentralCapacity: centralCapacity,
		Nodes:           make([]Node, len(nodes)),
		Cost:            costModel,
	}
	for i, n := range nodes {
		s.Nodes[i] = n.Clone()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.buildIndex()
	return s, nil
}

// Validate checks structural validity of the system.
func (s *System) Validate() error {
	if err := s.Cost.Validate(); err != nil {
		return err
	}
	if s.CentralCapacity < 0 {
		return fmt.Errorf("%w: central %v", ErrBadCapacity, s.CentralCapacity)
	}
	seen := make(map[NodeID]struct{}, len(s.Nodes))
	for _, n := range s.Nodes {
		if n.ID.IsCentral() {
			return ErrCentralInUse
		}
		if _, dup := seen[n.ID]; dup {
			return fmt.Errorf("%w: %v", ErrDuplicateNode, n.ID)
		}
		seen[n.ID] = struct{}{}
		if n.Capacity < 0 {
			return fmt.Errorf("%w: %v has %v", ErrBadCapacity, n.ID, n.Capacity)
		}
	}
	return nil
}

// Node returns the node with the given id, or false if absent or central.
func (s *System) Node(id NodeID) (Node, bool) {
	if s.index == nil {
		s.buildIndex()
	}
	i, ok := s.index[id]
	if !ok {
		return Node{}, false
	}
	return s.Nodes[i], true
}

// Capacity returns the capacity budget of id, handling the central node.
func (s *System) Capacity(id NodeID) float64 {
	if id.IsCentral() {
		return s.CentralCapacity
	}
	n, ok := s.Node(id)
	if !ok {
		return 0
	}
	return n.Capacity
}

// Dist returns the communication cost factor from a to b (1 when no
// Distance function is configured or when it returns a non-positive
// factor).
func (s *System) Dist(a, b NodeID) float64 {
	if s.Distance == nil {
		return 1
	}
	d := s.Distance(a, b)
	if d <= 0 {
		return 1
	}
	return d
}

// RegionOf returns the region label of id: the central collector's
// CentralRegion, a node's Region label, or the empty default region for
// unknown ids.
func (s *System) RegionOf(id NodeID) string {
	if id.IsCentral() {
		return s.CentralRegion
	}
	n, ok := s.Node(id)
	if !ok {
		return ""
	}
	return n.Region
}

// Regions returns the distinct region labels in use (nodes plus the
// collector's), sorted ascending. An unlabeled system yields the single
// default region "".
func (s *System) Regions() []string {
	seen := map[string]struct{}{s.CentralRegion: {}}
	for _, n := range s.Nodes {
		seen[n.Region] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RegionNodes groups the monitoring node ids by region label, ascending
// within each region.
func (s *System) RegionNodes() map[string][]NodeID {
	out := make(map[string][]NodeID)
	for _, n := range s.Nodes {
		out[n.Region] = append(out[n.Region], n.ID)
	}
	for _, ids := range out {
		SortNodes(ids)
	}
	return out
}

// ApplyTopology derives Distance from per-region edge prices: sending
// from a to b costs t.EdgeCost(RegionOf(a), RegionOf(b)) times the
// endpoint cost. The planner's guided search, the incremental replanner
// and the verifier's recount all consume Distance, so one call makes
// the whole stack charge the WAN price. A nil topology clears Distance
// back to uniform pricing.
func (s *System) ApplyTopology(t *cost.Topology) {
	s.Topology = t
	if t == nil {
		s.Distance = nil
		return
	}
	s.Distance = func(a, b NodeID) float64 {
		return t.EdgeCost(s.RegionOf(a), s.RegionOf(b))
	}
}

// NodeIDs returns the monitoring node ids in ascending order.
func (s *System) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		ids = append(ids, n.ID)
	}
	SortNodes(ids)
	return ids
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	nodes := make([]Node, len(s.Nodes))
	for i, n := range s.Nodes {
		nodes[i] = n.Clone()
	}
	c := &System{
		CentralCapacity: s.CentralCapacity,
		Nodes:           nodes,
		Cost:            s.Cost,
		Distance:        s.Distance,
		CentralRegion:   s.CentralRegion,
	}
	c.buildIndex()
	if s.Topology != nil {
		// Rebind the topology-derived Distance to the clone so later
		// region relabeling on either copy stays self-consistent.
		c.ApplyTopology(s.Topology.Clone())
	}
	return c
}

func (s *System) buildIndex() {
	s.index = make(map[NodeID]int, len(s.Nodes))
	for i, n := range s.Nodes {
		s.index[n.ID] = i
	}
}
