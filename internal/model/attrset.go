package model

import (
	"strconv"
	"strings"
)

// AttrSet is an immutable, canonically ordered set of attribute
// identifiers. Attribute-set partitions — the central object of REMO's
// partition augmentation — are slices of AttrSets.
//
// The zero value is the empty set and is ready to use.
type AttrSet struct {
	attrs []AttrID // sorted ascending, no duplicates
}

// NewAttrSet builds a set from the given attributes, deduplicating and
// sorting them.
func NewAttrSet(attrs ...AttrID) AttrSet {
	if len(attrs) == 0 {
		return AttrSet{}
	}
	cp := make([]AttrID, len(attrs))
	copy(cp, attrs)
	SortAttrs(cp)
	out := cp[:1]
	for _, a := range cp[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return AttrSet{attrs: out}
}

// Len returns the number of attributes in the set.
func (s AttrSet) Len() int { return len(s.attrs) }

// Empty reports whether the set has no attributes.
func (s AttrSet) Empty() bool { return len(s.attrs) == 0 }

// Attrs returns the attributes in ascending order. The returned slice is a
// copy and may be modified by the caller.
func (s AttrSet) Attrs() []AttrID {
	cp := make([]AttrID, len(s.attrs))
	copy(cp, s.attrs)
	return cp
}

// Contains reports whether a is in the set.
func (s AttrSet) Contains(a AttrID) bool {
	lo, hi := 0, len(s.attrs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.attrs[mid] == a:
			return true
		case s.attrs[mid] < a:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// Union returns s ∪ t (the paper's merge operation A_i ⋈ A_j).
func (s AttrSet) Union(t AttrSet) AttrSet {
	merged := make([]AttrID, 0, len(s.attrs)+len(t.attrs))
	i, j := 0, 0
	for i < len(s.attrs) && j < len(t.attrs) {
		switch {
		case s.attrs[i] < t.attrs[j]:
			merged = append(merged, s.attrs[i])
			i++
		case s.attrs[i] > t.attrs[j]:
			merged = append(merged, t.attrs[j])
			j++
		default:
			merged = append(merged, s.attrs[i])
			i++
			j++
		}
	}
	merged = append(merged, s.attrs[i:]...)
	merged = append(merged, t.attrs[j:]...)
	return AttrSet{attrs: merged}
}

// Remove returns s \ {a} (the paper's split operation A_i ▷ a yields
// s.Remove(a) and the singleton {a}).
func (s AttrSet) Remove(a AttrID) AttrSet {
	if !s.Contains(a) {
		return s
	}
	out := make([]AttrID, 0, len(s.attrs)-1)
	for _, x := range s.attrs {
		if x != a {
			out = append(out, x)
		}
	}
	return AttrSet{attrs: out}
}

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	var out []AttrID
	i, j := 0, 0
	for i < len(s.attrs) && j < len(t.attrs) {
		switch {
		case s.attrs[i] < t.attrs[j]:
			i++
		case s.attrs[i] > t.attrs[j]:
			j++
		default:
			out = append(out, s.attrs[i])
			i++
			j++
		}
	}
	return AttrSet{attrs: out}
}

// IntersectsAny reports whether s and t share at least one attribute,
// without materializing the intersection.
func (s AttrSet) IntersectsAny(t AttrSet) bool {
	i, j := 0, 0
	for i < len(s.attrs) && j < len(t.attrs) {
		switch {
		case s.attrs[i] < t.attrs[j]:
			i++
		case s.attrs[i] > t.attrs[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same attributes.
func (s AttrSet) Equal(t AttrSet) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for use in maps, such as tracking
// per-tree adjustment timestamps across adaptations.
func (s AttrSet) Key() string {
	if len(s.attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(s.attrs) * 4)
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(a)))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s AttrSet) String() string { return "{" + s.Key() + "}" }
