package model

import (
	"errors"
	"fmt"
)

// Task is an application state monitoring task t = (A_t, N_t): collect the
// values of every attribute in Attrs from every node in Nodes, once per
// collection round. A task is equivalent to the list of node-attribute
// pairs {(i, j) | i ∈ Nodes, j ∈ Attrs}.
type Task struct {
	// Name identifies the task for adaptation bookkeeping. Names must be
	// unique within a task set.
	Name string
	// Attrs is A_t, the attribute types to collect.
	Attrs []AttrID
	// Nodes is N_t, the nodes to collect from.
	Nodes []NodeID
}

// Errors returned by Task.Validate.
var (
	ErrEmptyTask    = errors.New("model: task has no attributes or no nodes")
	ErrTaskCentral  = errors.New("model: task targets the central node")
	ErrNamelessTask = errors.New("model: task has no name")
)

// Validate checks structural validity of the task.
func (t Task) Validate() error {
	if t.Name == "" {
		return ErrNamelessTask
	}
	if len(t.Attrs) == 0 || len(t.Nodes) == 0 {
		return fmt.Errorf("%w: %q", ErrEmptyTask, t.Name)
	}
	for _, n := range t.Nodes {
		if n.IsCentral() {
			return fmt.Errorf("%w: %q", ErrTaskCentral, t.Name)
		}
	}
	return nil
}

// Pairs expands the task into its node-attribute pairs, ordered by node
// then attribute. Duplicate attributes or nodes in the task produce
// duplicate pairs; the task manager removes duplicates across the whole
// task set.
func (t Task) Pairs() []Pair {
	pairs := make([]Pair, 0, len(t.Attrs)*len(t.Nodes))
	for _, n := range t.Nodes {
		for _, a := range t.Attrs {
			pairs = append(pairs, Pair{Node: n, Attr: a})
		}
	}
	SortPairs(pairs)
	return pairs
}

// AttrSet returns the task's attributes as a set.
func (t Task) AttrSet() AttrSet { return NewAttrSet(t.Attrs...) }

// Clone returns a deep copy of the task.
func (t Task) Clone() Task {
	return Task{
		Name:  t.Name,
		Attrs: append([]AttrID(nil), t.Attrs...),
		Nodes: append([]NodeID(nil), t.Nodes...),
	}
}

// String implements fmt.Stringer.
func (t Task) String() string {
	return fmt.Sprintf("task %q (%d attrs × %d nodes)", t.Name, len(t.Attrs), len(t.Nodes))
}
