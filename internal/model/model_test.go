package model

import (
	"errors"
	"testing"

	"remo/internal/cost"
)

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		task    Task
		wantErr error
	}{
		{
			name: "valid",
			task: Task{Name: "t", Attrs: []AttrID{1}, Nodes: []NodeID{1}},
		},
		{
			name:    "no name",
			task:    Task{Attrs: []AttrID{1}, Nodes: []NodeID{1}},
			wantErr: ErrNamelessTask,
		},
		{
			name:    "no attrs",
			task:    Task{Name: "t", Nodes: []NodeID{1}},
			wantErr: ErrEmptyTask,
		},
		{
			name:    "no nodes",
			task:    Task{Name: "t", Attrs: []AttrID{1}},
			wantErr: ErrEmptyTask,
		},
		{
			name:    "targets central",
			task:    Task{Name: "t", Attrs: []AttrID{1}, Nodes: []NodeID{Central}},
			wantErr: ErrTaskCentral,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.task.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestTaskPairs(t *testing.T) {
	task := Task{Name: "t", Attrs: []AttrID{2, 1}, Nodes: []NodeID{3, 1}}
	pairs := task.Pairs()
	want := []Pair{{1, 1}, {1, 2}, {3, 1}, {3, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("Pairs() = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("Pairs()[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestTaskCloneIsDeep(t *testing.T) {
	orig := Task{Name: "t", Attrs: []AttrID{1}, Nodes: []NodeID{1}}
	c := orig.Clone()
	c.Attrs[0] = 99
	c.Nodes[0] = 99
	if orig.Attrs[0] != 1 || orig.Nodes[0] != 1 {
		t.Fatal("Clone shares slices with the original")
	}
}

func testSystem(t *testing.T, n int, capacity float64) *System {
	t.Helper()
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i + 1), Capacity: capacity, Attrs: []AttrID{1, 2}}
	}
	sys, err := NewSystem(1e9, cost.Default(), nodes)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	good := []Node{{ID: 1, Capacity: 10}}
	if _, err := NewSystem(100, cost.Default(), good); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}

	dup := []Node{{ID: 1, Capacity: 10}, {ID: 1, Capacity: 10}}
	if _, err := NewSystem(100, cost.Default(), dup); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate node error = %v", err)
	}

	central := []Node{{ID: Central, Capacity: 10}}
	if _, err := NewSystem(100, cost.Default(), central); !errors.Is(err, ErrCentralInUse) {
		t.Fatalf("central id error = %v", err)
	}

	neg := []Node{{ID: 1, Capacity: -1}}
	if _, err := NewSystem(100, cost.Default(), neg); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("negative capacity error = %v", err)
	}

	if _, err := NewSystem(-1, cost.Default(), good); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("negative central capacity error = %v", err)
	}
}

func TestSystemLookup(t *testing.T) {
	sys := testSystem(t, 3, 50)
	n, ok := sys.Node(2)
	if !ok || n.ID != 2 {
		t.Fatalf("Node(2) = %+v, %v", n, ok)
	}
	if _, ok := sys.Node(99); ok {
		t.Fatal("Node(99) found")
	}
	if _, ok := sys.Node(Central); ok {
		t.Fatal("Node(Central) found in monitoring nodes")
	}
	if got := sys.Capacity(2); got != 50 {
		t.Fatalf("Capacity(2) = %v", got)
	}
	if got := sys.Capacity(Central); got != 1e9 {
		t.Fatalf("Capacity(central) = %v", got)
	}
	if got := sys.Capacity(99); got != 0 {
		t.Fatalf("Capacity(unknown) = %v", got)
	}
}

func TestSystemCloneIsDeep(t *testing.T) {
	sys := testSystem(t, 2, 50)
	c := sys.Clone()
	c.Nodes[0].Attrs[0] = 99
	if sys.Nodes[0].Attrs[0] != 1 {
		t.Fatal("Clone shares attribute slices")
	}
}

func TestSystemNodeIDsSorted(t *testing.T) {
	nodes := []Node{{ID: 5, Capacity: 1}, {ID: 2, Capacity: 1}, {ID: 9, Capacity: 1}}
	sys, err := NewSystem(10, cost.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	ids := sys.NodeIDs()
	want := []NodeID{2, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("NodeIDs = %v, want %v", ids, want)
		}
	}
}

func TestNodeHasAttr(t *testing.T) {
	n := Node{ID: 1, Attrs: []AttrID{3, 5}}
	if !n.HasAttr(3) || n.HasAttr(4) {
		t.Fatal("HasAttr misbehaved")
	}
}

func TestNodeIDString(t *testing.T) {
	if Central.String() != "central" {
		t.Fatalf("Central.String() = %q", Central.String())
	}
	if NodeID(7).String() != "n7" {
		t.Fatalf("NodeID(7).String() = %q", NodeID(7).String())
	}
	if !Central.IsCentral() || NodeID(1).IsCentral() {
		t.Fatal("IsCentral misbehaved")
	}
}
