// Package model defines the core data model of the REMO monitoring
// system: node and attribute identifiers, node-attribute pairs,
// monitoring tasks, and the description of the monitored system
// (node capacities, locally observable attributes, cost model).
//
// Every other package in this repository depends on model; model depends
// only on internal/cost.
package model

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. The central data collector is node Central;
// monitoring nodes use positive identifiers.
type NodeID int

// Central is the NodeID of the central data collector, the root of every
// monitoring tree.
const Central NodeID = 0

// IsCentral reports whether the node is the central collector.
func (n NodeID) IsCentral() bool { return n == Central }

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n == Central {
		return "central"
	}
	return fmt.Sprintf("n%d", int(n))
}

// AttrID identifies an attribute type (for example "cpu utilization").
// Attributes at different nodes with the same AttrID are the same type of
// metric, observed locally at each node.
type AttrID int

// String implements fmt.Stringer.
func (a AttrID) String() string { return fmt.Sprintf("a%d", int(a)) }

// Pair is a node-attribute pair (i, j): the value of attribute j observed
// at node i. The planner's objective is to maximize the number of pairs
// collected at the central node.
type Pair struct {
	Node NodeID
	Attr AttrID
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("(%v,%v)", p.Node, p.Attr) }

// SortPairs orders pairs by node then attribute, in place.
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Node != pairs[j].Node {
			return pairs[i].Node < pairs[j].Node
		}
		return pairs[i].Attr < pairs[j].Attr
	})
}

// SortNodes orders node ids ascending, in place.
func SortNodes(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// SortAttrs orders attribute ids ascending, in place.
func SortAttrs(ids []AttrID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
