package model

import (
	"reflect"
	"testing"

	"remo/internal/cost"
)

func regionSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(100, cost.Default(), []Node{
		{ID: 1, Capacity: 10, Attrs: []AttrID{1}, Region: "r0"},
		{ID: 2, Capacity: 10, Attrs: []AttrID{1}, Region: "r0"},
		{ID: 3, Capacity: 10, Attrs: []AttrID{1}, Region: "r1"},
		{ID: 4, Capacity: 10, Attrs: []AttrID{1}, Region: "r2"},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sys.CentralRegion = "r0"
	return sys
}

func TestRegionAccessors(t *testing.T) {
	sys := regionSystem(t)
	if got := sys.RegionOf(Central); got != "r0" {
		t.Fatalf("RegionOf(central) = %q, want r0", got)
	}
	if got := sys.RegionOf(3); got != "r1" {
		t.Fatalf("RegionOf(3) = %q, want r1", got)
	}
	if got := sys.RegionOf(99); got != "" {
		t.Fatalf("RegionOf(unknown) = %q, want empty", got)
	}
	if got := sys.Regions(); !reflect.DeepEqual(got, []string{"r0", "r1", "r2"}) {
		t.Fatalf("Regions = %v", got)
	}
	want := map[string][]NodeID{"r0": {1, 2}, "r1": {3}, "r2": {4}}
	if got := sys.RegionNodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RegionNodes = %v, want %v", got, want)
	}
}

func TestRegionsUnlabeledSystem(t *testing.T) {
	sys, err := NewSystem(100, cost.Default(), []Node{{ID: 1, Capacity: 10}})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if got := sys.Regions(); !reflect.DeepEqual(got, []string{""}) {
		t.Fatalf("unlabeled Regions = %v, want [\"\"]", got)
	}
}

func TestApplyTopologyDrivesDist(t *testing.T) {
	sys := regionSystem(t)
	if got := sys.Dist(1, 3); got != 1 {
		t.Fatalf("Dist before topology = %v, want 1", got)
	}
	topo := cost.NewTopology(1, 8)
	topo.SetLink("r1", "r2", 3)
	sys.ApplyTopology(topo)
	if got := sys.Dist(1, 2); got != 1 {
		t.Fatalf("intra Dist = %v, want 1", got)
	}
	if got := sys.Dist(1, 3); got != 8 {
		t.Fatalf("inter Dist = %v, want 8", got)
	}
	if got := sys.Dist(3, 4); got != 3 {
		t.Fatalf("link-overridden Dist = %v, want 3", got)
	}
	if got := sys.Dist(3, Central); got != 8 {
		t.Fatalf("to-central Dist = %v, want 8", got)
	}
	sys.ApplyTopology(nil)
	if sys.Distance != nil || sys.Topology != nil {
		t.Fatal("ApplyTopology(nil) should clear Distance and Topology")
	}
}

func TestCloneRebindsTopology(t *testing.T) {
	sys := regionSystem(t)
	sys.ApplyTopology(cost.NewTopology(1, 8))
	c := sys.Clone()
	if c.Topology == sys.Topology {
		t.Fatal("Clone should deep-copy the topology")
	}
	// Relabel a node on the clone: its Distance must follow the clone's
	// labels, while the original keeps pricing the old layout.
	c.Nodes[2].Region = "r0" // node 3 moves next to node 1
	if got := c.Dist(1, 3); got != 1 {
		t.Fatalf("clone Dist after relabel = %v, want 1", got)
	}
	if got := sys.Dist(1, 3); got != 8 {
		t.Fatalf("original Dist after clone relabel = %v, want 8", got)
	}
}
