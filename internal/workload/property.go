package workload

import (
	"fmt"
	"math/rand"

	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/task"
)

// GenBounds bounds the random instance generator. The zero value is
// replaced by DefaultBounds; any individual zero field inherits the
// default for that field.
type GenBounds struct {
	// MinNodes and MaxNodes bound the node count (inclusive).
	MinNodes, MaxNodes int
	// MaxAttrs bounds the attribute pool (at least 1 is drawn).
	MaxAttrs int
	// MaxTasks bounds the task count (at least 1 is drawn).
	MaxTasks int
	// CapacityLo and CapacityHi bound the per-node capacity range the
	// instance draws its own sub-range from. Spanning tight to ample
	// budgets is what makes generated instances exercise both the
	// everything-fits and the must-drop-pairs regimes.
	CapacityLo, CapacityHi float64
}

// DefaultBounds generates small-to-medium instances: large enough to
// form multi-level trees and partition structure, small enough that a
// single property test can afford dozens of planner runs.
func DefaultBounds() GenBounds {
	return GenBounds{
		MinNodes: 4, MaxNodes: 48,
		MaxAttrs:   16,
		MaxTasks:   24,
		CapacityLo: 20, CapacityHi: 600,
	}
}

// TinyBounds generates instances small enough for exhaustive-partition
// differential testing: at most 6 nodes and 6 attributes, so the brute
// force oracle enumerates at most B(6) = 203 partitions.
func TinyBounds() GenBounds {
	return GenBounds{
		MinNodes: 2, MaxNodes: 6,
		MaxAttrs:   6,
		MaxTasks:   6,
		CapacityLo: 15, CapacityHi: 300,
	}
}

// normalize fills zero fields from DefaultBounds.
func (b GenBounds) normalize() GenBounds {
	def := DefaultBounds()
	if b.MinNodes <= 0 {
		b.MinNodes = def.MinNodes
	}
	if b.MaxNodes <= 0 {
		b.MaxNodes = def.MaxNodes
	}
	if b.MaxNodes < b.MinNodes {
		b.MaxNodes = b.MinNodes
	}
	if b.MaxAttrs <= 0 {
		b.MaxAttrs = def.MaxAttrs
	}
	if b.MaxTasks <= 0 {
		b.MaxTasks = def.MaxTasks
	}
	if b.CapacityLo <= 0 {
		b.CapacityLo = def.CapacityLo
	}
	if b.CapacityHi < b.CapacityLo {
		b.CapacityHi = def.CapacityHi
	}
	return b
}

// Instance is one generated planning problem: the sized configuration
// (kept so the instance can shrink) plus the materialized system and
// task set.
type Instance struct {
	// Seed is the instance's generator seed: Generate(bounds, seed) with
	// the recorded bounds reproduces it exactly.
	Seed int64
	// Bounds are the generator bounds the instance was drawn from.
	Bounds GenBounds
	// Nodes, Attrs and TaskCount are the drawn sizes.
	Nodes, Attrs, TaskCount int
	// CapLo and CapHi are the drawn capacity sub-range.
	CapLo, CapHi float64
	// Sys and Tasks are the materialized problem.
	Sys   *model.System
	Tasks []model.Task
}

// String identifies the instance in failure messages.
func (in Instance) String() string {
	return fmt.Sprintf("instance(seed=%d nodes=%d attrs=%d tasks=%d cap=[%.0f,%.0f])",
		in.Seed, in.Nodes, in.Attrs, in.TaskCount, in.CapLo, in.CapHi)
}

// Demand expands the instance's tasks into a deduplicated demand.
func (in Instance) Demand() (*task.Demand, error) {
	return Demand(in.Sys, in.Tasks)
}

// Generate draws one random planning instance. All randomness derives
// from seed, so a failing instance replays from its Seed alone.
func Generate(bounds GenBounds, seed int64) (Instance, error) {
	b := bounds.normalize()
	rng := rand.New(rand.NewSource(seed))

	in := Instance{
		Seed:      seed,
		Bounds:    b,
		Nodes:     b.MinNodes + rng.Intn(b.MaxNodes-b.MinNodes+1),
		Attrs:     1 + rng.Intn(b.MaxAttrs),
		TaskCount: 1 + rng.Intn(b.MaxTasks),
	}
	// Draw a capacity sub-range so some instances are uniformly tight,
	// some uniformly ample, and some mixed.
	lo := b.CapacityLo + rng.Float64()*(b.CapacityHi-b.CapacityLo)
	hi := b.CapacityLo + rng.Float64()*(b.CapacityHi-b.CapacityLo)
	if hi < lo {
		lo, hi = hi, lo
	}
	in.CapLo, in.CapHi = lo, hi
	return in.materialize()
}

// materialize builds the system and tasks from the instance's sizes.
func (in Instance) materialize() (Instance, error) {
	rng := rand.New(rand.NewSource(in.Seed))
	sys, err := System(SystemConfig{
		Nodes:      in.Nodes,
		Attrs:      in.Attrs,
		CapacityLo: in.CapLo,
		CapacityHi: in.CapHi,
		// Vary the collector budget too: a fraction of a per-node root
		// message per node keeps the central constraint occasionally
		// binding.
		CentralCapacity: float64(in.Nodes) * (6 + 10*rng.Float64()),
		Cost:            cost.Default(),
		Seed:            in.Seed,
	})
	if err != nil {
		return in, err
	}
	in.Sys = sys

	attrsPer := 1 + rng.Intn(maxInt(1, in.Attrs))
	nodesPer := 1 + rng.Intn(maxInt(1, in.Nodes))
	in.Tasks = Tasks(sys, TaskConfig{
		Count:        in.TaskCount,
		AttrsPerTask: attrsPer,
		NodesPerTask: nodesPer,
		Seed:         in.Seed + 1,
		Prefix:       "gen",
	})
	return in, nil
}

// Shrink returns strictly smaller variants of the instance, largest
// reduction first: halved node count, halved task count, halved
// attribute pool. Each variant re-materializes from the same seed so it
// stays deterministic.
func (in Instance) Shrink() []Instance {
	var out []Instance
	try := func(mut func(*Instance)) {
		v := in
		mut(&v)
		if v.Nodes < 1 || v.Attrs < 1 || v.TaskCount < 1 {
			return
		}
		if v.Nodes == in.Nodes && v.Attrs == in.Attrs && v.TaskCount == in.TaskCount {
			return
		}
		m, err := v.materialize()
		if err != nil {
			return
		}
		out = append(out, m)
	}
	try(func(v *Instance) { v.Nodes /= 2 })
	try(func(v *Instance) { v.TaskCount /= 2 })
	try(func(v *Instance) { v.Attrs /= 2 })
	try(func(v *Instance) { v.Nodes-- })
	try(func(v *Instance) { v.TaskCount-- })
	try(func(v *Instance) { v.Attrs-- })
	return out
}

// Minimize greedily shrinks a failing instance while fails keeps
// reporting failure, returning the smallest failing instance found.
// Property tests report the minimized instance so a reproduction is a
// few nodes, not fifty.
func Minimize(in Instance, fails func(Instance) bool) Instance {
	for {
		shrunk := false
		for _, v := range in.Shrink() {
			if fails(v) {
				in = v
				shrunk = true
				break
			}
		}
		if !shrunk {
			return in
		}
	}
}
