// Package workload generates the synthetic systems, monitoring tasks and
// task churn used throughout the paper's evaluation (§7): nodes with
// random capacities and attribute subsets, small-scale and large-scale
// monitoring tasks drawn uniformly, and incremental task mutations for
// the adaptation experiments.
package workload

import (
	"fmt"
	"math/rand"

	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/task"
)

// SystemConfig parameterizes synthetic system generation.
type SystemConfig struct {
	// Nodes is the number of monitoring nodes.
	Nodes int
	// Attrs is the size of the attribute pool; every node observes the
	// full pool (tasks select subsets).
	Attrs int
	// CapacityLo and CapacityHi bound per-node capacities (uniform).
	CapacityLo, CapacityHi float64
	// CentralCapacity is the collector's budget; zero derives a budget
	// proportional to the node count.
	CentralCapacity float64
	// Cost is the message cost model; zero value uses cost.Default().
	Cost cost.Model
	// Regions, when > 1, partitions the nodes into that many contiguous
	// region blocks labeled r0..r{Regions-1} (the central collector sits
	// in r0) and applies WAN topology pricing: intra-region edges cost 1,
	// inter-region edges cost InterRegionCost.
	Regions int
	// InterRegionCost is the inter-region edge multiplier (default
	// cost.DefaultInterRegionCost; ignored unless Regions > 1).
	InterRegionCost float64
	// Seed drives the generator.
	Seed int64
}

// RegionName labels region index i as the generator does ("r0", "r1",
// ...), shared with remo-sim's chaos wiring.
func RegionName(i int) string { return fmt.Sprintf("r%d", i) }

// System builds a synthetic system from the config.
func System(cfg SystemConfig) (*model.System, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Cost == (cost.Model{}) {
		cfg.Cost = cost.Default()
	}
	if cfg.CapacityHi < cfg.CapacityLo {
		cfg.CapacityHi = cfg.CapacityLo
	}
	central := cfg.CentralCapacity
	if central <= 0 {
		// Enough to receive a few root messages per node's worth of
		// values without making the collector the only bottleneck.
		central = float64(cfg.Nodes) * cfg.Cost.Message(4)
	}
	attrs := make([]model.AttrID, cfg.Attrs)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	nodes := make([]model.Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = model.Node{
			ID:       model.NodeID(i + 1),
			Capacity: cfg.CapacityLo + rng.Float64()*(cfg.CapacityHi-cfg.CapacityLo),
			Attrs:    attrs,
		}
		if cfg.Regions > 1 {
			// Contiguous blocks, remainder spread over the first regions.
			nodes[i].Region = RegionName(i * cfg.Regions / cfg.Nodes)
		}
	}
	sys, err := model.NewSystem(central, cfg.Cost, nodes)
	if err != nil || cfg.Regions <= 1 {
		return sys, err
	}
	sys.CentralRegion = RegionName(0)
	sys.ApplyTopology(cost.NewTopology(1, cfg.InterRegionCost))
	return sys, nil
}

// TaskConfig parameterizes task generation: Count tasks, each monitoring
// AttrsPerTask attributes on NodesPerTask nodes, drawn uniformly from
// the system's pools.
type TaskConfig struct {
	Count        int
	AttrsPerTask int
	NodesPerTask int
	Seed         int64
	// Prefix names the tasks (default "task").
	Prefix string
}

// Tasks draws Count random tasks over the system's nodes and attribute
// pool with uniform probability, as in §7's synthetic experiments.
func Tasks(sys *model.System, cfg TaskConfig) []model.Task {
	rng := rand.New(rand.NewSource(cfg.Seed))
	prefix := cfg.Prefix
	if prefix == "" {
		prefix = "task"
	}
	nodeIDs := sys.NodeIDs()
	attrPool := attrPoolOf(sys)

	out := make([]model.Task, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		t := model.Task{
			Name:  fmt.Sprintf("%s-%d", prefix, i),
			Attrs: sampleAttrs(rng, attrPool, cfg.AttrsPerTask),
			Nodes: sampleNodes(rng, nodeIDs, cfg.NodesPerTask),
		}
		out = append(out, t)
	}
	return out
}

// SmallTasks draws small-scale tasks: few attributes from few nodes
// (§7's "small set of attributes from a small set of nodes").
func SmallTasks(sys *model.System, count int, seed int64) []model.Task {
	return Tasks(sys, TaskConfig{
		Count:        count,
		AttrsPerTask: 3,
		NodesPerTask: maxInt(2, len(sys.Nodes)/10),
		Seed:         seed,
		Prefix:       "small",
	})
}

// LargeTasks draws large-scale tasks involving many nodes and a wider
// attribute spread.
func LargeTasks(sys *model.System, count int, seed int64) []model.Task {
	return Tasks(sys, TaskConfig{
		Count:        count,
		AttrsPerTask: maxInt(6, attrCount(sys)/4),
		NodesPerTask: maxInt(4, len(sys.Nodes)/2),
		Seed:         seed,
		Prefix:       "large",
	})
}

// Demand expands tasks through a task manager into a deduplicated
// demand.
func Demand(sys *model.System, tasks []model.Task) (*task.Demand, error) {
	m := task.NewManager(task.WithSystem(sys))
	for _, t := range tasks {
		if err := m.Add(t); err != nil {
			return nil, err
		}
	}
	return m.Demand(), nil
}

// ChurnConfig parameterizes task mutation for adaptation experiments:
// each batch rewrites the attribute sets of a fraction of tasks (the
// paper mutates 5% of nodes, replacing 50% of their attributes).
type ChurnConfig struct {
	// TaskFraction is the fraction of tasks mutated per batch.
	TaskFraction float64
	// AttrFraction is the fraction of each mutated task's attributes
	// replaced.
	AttrFraction float64
	Seed         int64
}

// Churn returns a mutated copy of tasks.
func Churn(sys *model.System, tasks []model.Task, cfg ChurnConfig) []model.Task {
	rng := rand.New(rand.NewSource(cfg.Seed))
	attrPool := attrPoolOf(sys)
	out := make([]model.Task, len(tasks))
	for i, t := range tasks {
		out[i] = t.Clone()
		if rng.Float64() >= cfg.TaskFraction {
			continue
		}
		nReplace := int(float64(len(t.Attrs))*cfg.AttrFraction + 0.5)
		for j := 0; j < nReplace && j < len(out[i].Attrs); j++ {
			out[i].Attrs[j] = attrPool[rng.Intn(len(attrPool))]
		}
		out[i].Attrs = dedupAttrs(out[i].Attrs)
	}
	return out
}

// RackDistance returns a distance function modeling a racked topology
// for the §3.3 extension: nodes are grouped into racks of rackSize by
// id; same-rack communication costs intra, cross-rack costs inter
// (typically intra=1, inter>1). The central collector sits in rack 0.
func RackDistance(rackSize int, intra, inter float64) func(a, b model.NodeID) float64 {
	if rackSize < 1 {
		rackSize = 1
	}
	rack := func(n model.NodeID) int {
		if n.IsCentral() {
			return 0
		}
		return (int(n) - 1) / rackSize
	}
	return func(a, b model.NodeID) float64 {
		if rack(a) == rack(b) {
			return intra
		}
		return inter
	}
}

func attrPoolOf(sys *model.System) []model.AttrID {
	seen := make(map[model.AttrID]struct{})
	var pool []model.AttrID
	for _, n := range sys.Nodes {
		for _, a := range n.Attrs {
			if _, dup := seen[a]; !dup {
				seen[a] = struct{}{}
				pool = append(pool, a)
			}
		}
	}
	model.SortAttrs(pool)
	return pool
}

func attrCount(sys *model.System) int { return len(attrPoolOf(sys)) }

func sampleAttrs(rng *rand.Rand, pool []model.AttrID, k int) []model.AttrID {
	if k >= len(pool) {
		return append([]model.AttrID(nil), pool...)
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]model.AttrID, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	model.SortAttrs(out)
	return out
}

func sampleNodes(rng *rand.Rand, pool []model.NodeID, k int) []model.NodeID {
	if k >= len(pool) {
		return append([]model.NodeID(nil), pool...)
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]model.NodeID, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	model.SortNodes(out)
	return out
}

func dedupAttrs(attrs []model.AttrID) []model.AttrID {
	return model.NewAttrSet(attrs...).Attrs()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
