package workload

import (
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
)

func TestSystemGeneration(t *testing.T) {
	sys, err := System(SystemConfig{
		Nodes: 50, Attrs: 20, CapacityLo: 30, CapacityHi: 90, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Nodes) != 50 {
		t.Fatalf("nodes = %d", len(sys.Nodes))
	}
	for _, n := range sys.Nodes {
		if n.Capacity < 30 || n.Capacity > 90 {
			t.Fatalf("capacity %v out of range", n.Capacity)
		}
		if len(n.Attrs) != 20 {
			t.Fatalf("attrs = %d", len(n.Attrs))
		}
	}
	if sys.CentralCapacity <= 0 {
		t.Fatal("central capacity not derived")
	}
	if sys.Cost != cost.Default() {
		t.Fatalf("cost = %+v, want default", sys.Cost)
	}
}

func TestSystemDeterministic(t *testing.T) {
	cfg := SystemConfig{Nodes: 10, Attrs: 5, CapacityLo: 10, CapacityHi: 20, Seed: 9}
	a, err := System(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := System(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Capacity != b.Nodes[i].Capacity {
			t.Fatal("nondeterministic capacities")
		}
	}
}

func testSys(t *testing.T) *model.System {
	t.Helper()
	sys, err := System(SystemConfig{Nodes: 40, Attrs: 30, CapacityLo: 50, CapacityHi: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTasksGeneration(t *testing.T) {
	sys := testSys(t)
	tasks := Tasks(sys, TaskConfig{Count: 25, AttrsPerTask: 4, NodesPerTask: 6, Seed: 3})
	if len(tasks) != 25 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	names := make(map[string]struct{})
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Fatalf("invalid task: %v", err)
		}
		if len(task.Attrs) != 4 || len(task.Nodes) != 6 {
			t.Fatalf("task shape = %d attrs × %d nodes", len(task.Attrs), len(task.Nodes))
		}
		if _, dup := names[task.Name]; dup {
			t.Fatalf("duplicate name %q", task.Name)
		}
		names[task.Name] = struct{}{}
	}
}

func TestSmallAndLargeTasks(t *testing.T) {
	sys := testSys(t)
	small := SmallTasks(sys, 10, 4)
	large := LargeTasks(sys, 10, 4)
	if len(small) != 10 || len(large) != 10 {
		t.Fatal("wrong counts")
	}
	if len(small[0].Nodes) >= len(large[0].Nodes) {
		t.Fatalf("small tasks span %d nodes, large %d", len(small[0].Nodes), len(large[0].Nodes))
	}
	if len(small[0].Attrs) >= len(large[0].Attrs) {
		t.Fatalf("small tasks have %d attrs, large %d", len(small[0].Attrs), len(large[0].Attrs))
	}
}

func TestDemandExpansion(t *testing.T) {
	sys := testSys(t)
	tasks := SmallTasks(sys, 5, 7)
	d, err := Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if d.PairCount() == 0 {
		t.Fatal("empty demand")
	}
	// Every demanded pair comes from some task.
	for _, p := range d.Pairs() {
		found := false
		for _, task := range tasks {
			for _, n := range task.Nodes {
				if n != p.Node {
					continue
				}
				for _, a := range task.Attrs {
					if a == p.Attr {
						found = true
					}
				}
			}
		}
		if !found {
			t.Fatalf("pair %v not in any task", p)
		}
	}
}

func TestChurnMutatesBounded(t *testing.T) {
	sys := testSys(t)
	tasks := Tasks(sys, TaskConfig{Count: 40, AttrsPerTask: 6, NodesPerTask: 5, Seed: 5})
	mutated := Churn(sys, tasks, ChurnConfig{TaskFraction: 0.25, AttrFraction: 0.5, Seed: 6})
	if len(mutated) != len(tasks) {
		t.Fatal("churn changed task count")
	}
	changed := 0
	for i := range tasks {
		if tasks[i].Name != mutated[i].Name {
			t.Fatal("churn renamed a task")
		}
		if !tasks[i].AttrSet().Equal(mutated[i].AttrSet()) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("churn changed nothing")
	}
	if changed > 20 {
		t.Fatalf("churn changed %d of 40 tasks at fraction 0.25", changed)
	}
	// Original tasks untouched.
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChurnDeterministic(t *testing.T) {
	sys := testSys(t)
	tasks := SmallTasks(sys, 10, 1)
	cfg := ChurnConfig{TaskFraction: 0.5, AttrFraction: 0.5, Seed: 11}
	a := Churn(sys, tasks, cfg)
	b := Churn(sys, tasks, cfg)
	for i := range a {
		if !a[i].AttrSet().Equal(b[i].AttrSet()) {
			t.Fatal("nondeterministic churn")
		}
	}
}

func TestRackDistance(t *testing.T) {
	dist := RackDistance(3, 1, 8)
	// Nodes 1-3 are rack 0 (with the collector), 4-6 rack 1.
	if got := dist(1, 2); got != 1 {
		t.Fatalf("same-rack = %v", got)
	}
	if got := dist(1, 4); got != 8 {
		t.Fatalf("cross-rack = %v", got)
	}
	if got := dist(2, model.Central); got != 1 {
		t.Fatalf("rack0 to central = %v", got)
	}
	if got := dist(5, model.Central); got != 8 {
		t.Fatalf("rack1 to central = %v", got)
	}
	// Degenerate rack size clamps to 1.
	tiny := RackDistance(0, 1, 2)
	if got := tiny(1, 2); got != 2 {
		t.Fatalf("rackSize 0: %v", got)
	}
}

func TestSystemRegions(t *testing.T) {
	sys, err := System(SystemConfig{
		Nodes: 10, Attrs: 4, CapacityLo: 10, CapacityHi: 20,
		Regions: 3, InterRegionCost: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRegion := sys.RegionNodes()
	if len(byRegion) != 3 {
		t.Fatalf("got %d regions, want 3", len(byRegion))
	}
	// Contiguous blocks: 10 nodes over 3 regions = 4/3/3.
	if got := len(byRegion[RegionName(0)]); got != 4 {
		t.Fatalf("r0 has %d nodes, want 4", got)
	}
	if sys.CentralRegion != RegionName(0) {
		t.Fatalf("CentralRegion = %q, want r0", sys.CentralRegion)
	}
	if sys.Topology == nil || sys.Distance == nil {
		t.Fatal("region generation must apply a topology")
	}
	r0 := byRegion[RegionName(0)]
	r1 := byRegion[RegionName(1)]
	if got := sys.Dist(r0[0], r0[1]); got != 1 {
		t.Fatalf("intra-region Dist = %v, want 1", got)
	}
	if got := sys.Dist(r0[0], r1[0]); got != 6 {
		t.Fatalf("inter-region Dist = %v, want 6", got)
	}
	if got := sys.Dist(r1[0], model.Central); got != 6 {
		t.Fatalf("r1-to-central Dist = %v, want 6", got)
	}
}

func TestSystemNoRegionsByDefault(t *testing.T) {
	sys, err := System(SystemConfig{Nodes: 5, Attrs: 2, CapacityLo: 10, CapacityHi: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topology != nil || sys.Distance != nil {
		t.Fatal("regionless generation must not apply a topology")
	}
	if got := len(sys.Regions()); got != 1 {
		t.Fatalf("regionless system has %d regions, want 1", got)
	}
}
