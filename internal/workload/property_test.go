package workload

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, err := Generate(DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Nodes != b.Nodes || a.Attrs != b.Attrs || a.TaskCount != b.TaskCount {
			t.Fatalf("seed %d: sizes differ between runs: %v vs %v", seed, a, b)
		}
		if !reflect.DeepEqual(a.Sys, b.Sys) {
			t.Fatalf("seed %d: systems differ between runs", seed)
		}
		if !reflect.DeepEqual(a.Tasks, b.Tasks) {
			t.Fatalf("seed %d: tasks differ between runs", seed)
		}
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	bounds := GenBounds{
		MinNodes: 3, MaxNodes: 9,
		MaxAttrs: 5, MaxTasks: 4,
		CapacityLo: 50, CapacityHi: 80,
	}
	for seed := int64(0); seed < 50; seed++ {
		in, err := Generate(bounds, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.Nodes < bounds.MinNodes || in.Nodes > bounds.MaxNodes {
			t.Fatalf("%v: node count outside [%d, %d]", in, bounds.MinNodes, bounds.MaxNodes)
		}
		if in.Attrs < 1 || in.Attrs > bounds.MaxAttrs {
			t.Fatalf("%v: attr count outside [1, %d]", in, bounds.MaxAttrs)
		}
		if in.TaskCount < 1 || in.TaskCount > bounds.MaxTasks {
			t.Fatalf("%v: task count outside [1, %d]", in, bounds.MaxTasks)
		}
		if len(in.Sys.Nodes) != in.Nodes {
			t.Fatalf("%v: materialized %d nodes", in, len(in.Sys.Nodes))
		}
		for _, n := range in.Sys.Nodes {
			if n.Capacity < bounds.CapacityLo-1e-9 || n.Capacity > bounds.CapacityHi+1e-9 {
				t.Fatalf("%v: node %d capacity %.2f outside [%.0f, %.0f]",
					in, n.ID, n.Capacity, bounds.CapacityLo, bounds.CapacityHi)
			}
		}
	}
}

func TestShrinkStrictlySmaller(t *testing.T) {
	in, err := Generate(DefaultBounds(), 33)
	if err != nil {
		t.Fatal(err)
	}
	size := func(v Instance) int { return v.Nodes + v.Attrs + v.TaskCount }
	for _, v := range in.Shrink() {
		if size(v) >= size(in) {
			t.Fatalf("shrink %v is not smaller than %v", v, in)
		}
		if v.Nodes < 1 || v.Attrs < 1 || v.TaskCount < 1 {
			t.Fatalf("shrink %v degenerated below the minimum sizes", v)
		}
		if v.Sys == nil || len(v.Sys.Nodes) != v.Nodes {
			t.Fatalf("shrink %v was not re-materialized", v)
		}
	}
}

func TestMinimizeConverges(t *testing.T) {
	in, err := Generate(DefaultBounds(), 44)
	if err != nil {
		t.Fatal(err)
	}
	// A property that fails whenever the instance has ≥ 3 nodes: Minimize
	// must land on the smallest still-failing instance.
	fails := func(v Instance) bool { return v.Nodes >= 3 }
	if !fails(in) {
		t.Skipf("%v already below the failure threshold", in)
	}
	min := Minimize(in, fails)
	if !fails(min) {
		t.Fatalf("minimized instance %v no longer fails", min)
	}
	if min.Nodes != 3 {
		t.Fatalf("minimize stopped at %d nodes, want 3: %v", min.Nodes, min)
	}
	if min.TaskCount != 1 || min.Attrs != 1 {
		t.Fatalf("minimize left shrinkable dimensions: %v", min)
	}
}

func TestMinimizeKeepsPassingInstance(t *testing.T) {
	in, err := Generate(DefaultBounds(), 55)
	if err != nil {
		t.Fatal(err)
	}
	min := Minimize(in, func(Instance) bool { return false })
	if min.String() != in.String() {
		t.Fatalf("minimize moved off a non-failing instance: %v → %v", in, min)
	}
}
