package plan_test

import (
	"errors"
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/verify"
)

// buildChain builds a three-node chain tree 1 → 2 → 3 (root 1) over a
// matching system and demand.
func buildChain(t *testing.T) (verify.Context, *plan.Tree) {
	t.Helper()
	sys, err := model.NewSystem(1000, cost.Default(), []model.Node{
		{ID: 1, Capacity: 500, Attrs: []model.AttrID{1}},
		{ID: 2, Capacity: 500, Attrs: []model.AttrID{1}},
		{ID: 3, Capacity: 500, Attrs: []model.AttrID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(2, 1, 1)
	d.Set(3, 1, 1)
	tr := plan.NewTree(model.NewAttrSet(1))
	for _, e := range [][2]model.NodeID{{1, model.Central}, {2, 1}, {3, 2}} {
		if err := tr.AddNode(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return verify.Context{Sys: sys, Demand: d}, tr
}

func wrap(tr *plan.Tree) *plan.Forest {
	f := plan.NewForest()
	f.Add(tr)
	return f
}

// TestMutationOrphanedParentLink proves both the tree's own Validate
// and the independent verifier notice a parent link pointing at a
// non-member — the public API cannot construct this, so the corruption
// goes through a test-only hook.
func TestMutationOrphanedParentLink(t *testing.T) {
	ctx, tr := buildChain(t)
	tr.CorruptParentForTest(3, 99) // 99 is not a member
	if err := tr.Validate(); err == nil {
		t.Fatal("orphaned parent link not flagged by Tree.Validate")
	}
	if err := verify.Plan(ctx, wrap(tr)); !errors.Is(err, verify.ErrStructure) {
		t.Fatalf("orphaned parent link: got %v, want ErrStructure", err)
	}
}

// TestMutationDetachedSubtree proves a child-index corruption (subtree
// unreachable from the root) trips the verifier's Members/Size check.
func TestMutationDetachedSubtree(t *testing.T) {
	ctx, tr := buildChain(t)
	tr.CorruptDetachForTest(2) // 2 (and 3 below it) no longer reachable
	if got, want := len(tr.Members()), tr.Size(); got == want {
		t.Fatalf("detached subtree invisible: %d reachable of %d members", got, want)
	}
	if err := verify.Plan(ctx, wrap(tr)); !errors.Is(err, verify.ErrStructure) {
		t.Fatalf("detached subtree: got %v, want ErrStructure", err)
	}
}

// TestMutationCycle proves a parent-link cycle below the root is caught
// by the verifier's bounded parent-chain climb.
func TestMutationCycle(t *testing.T) {
	ctx, tr := buildChain(t)
	tr.CorruptParentForTest(2, 3) // 2 → 3 → 2
	if err := verify.Plan(ctx, wrap(tr)); !errors.Is(err, verify.ErrStructure) {
		t.Fatalf("parent cycle: got %v, want ErrStructure", err)
	}
}

// TestMutationChainAccepted pins the happy path for the same fixture.
func TestMutationChainAccepted(t *testing.T) {
	ctx, tr := buildChain(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid chain rejected by Tree.Validate: %v", err)
	}
	if err := verify.Plan(ctx, wrap(tr)); err != nil {
		t.Fatalf("valid chain rejected by verifier: %v", err)
	}
}
