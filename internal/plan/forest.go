package plan

import (
	"errors"
	"fmt"
	"sort"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/task"
)

// Forest is a complete monitoring plan: a set of collection trees whose
// attribute sets form a partition of (a subset of) the demanded
// attributes.
type Forest struct {
	Trees []*Tree
}

// NewForest returns an empty forest.
func NewForest() *Forest { return &Forest{} }

// Add appends a tree to the forest.
func (f *Forest) Add(t *Tree) { f.Trees = append(f.Trees, t) }

// Clone returns a deep copy of the forest.
func (f *Forest) Clone() *Forest {
	c := &Forest{Trees: make([]*Tree, len(f.Trees))}
	for i, t := range f.Trees {
		c.Trees[i] = t.Clone()
	}
	return c
}

// Fingerprint returns a 64-bit digest of the whole plan: the sorted
// tree fingerprints folded through FNV-1a. It is independent of tree
// order, so two forests holding the same trees compare equal — the
// identity a durable session journals to tell whether a replanned
// topology matches the one installed before a crash.
func (f *Forest) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fps := make([]uint64, 0, len(f.Trees))
	for _, t := range f.Trees {
		fps = append(fps, t.Fingerprint())
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	h := uint64(offset64)
	for _, fp := range fps {
		for i := 0; i < 8; i++ {
			h ^= fp & 0xff
			h *= prime64
			fp >>= 8
		}
	}
	return h
}

// TreeFor returns the tree delivering attribute a, or nil if none does.
func (f *Forest) TreeFor(a model.AttrID) *Tree {
	for _, t := range f.Trees {
		if t.Attrs.Contains(a) {
			return t
		}
	}
	return nil
}

// Partition returns the attribute sets of the forest's trees.
func (f *Forest) Partition() []model.AttrSet {
	sets := make([]model.AttrSet, len(f.Trees))
	for i, t := range f.Trees {
		sets[i] = t.Attrs
	}
	return sets
}

// Stats holds the evaluated resource profile of a forest.
type Stats struct {
	// PerTree are the tree-level profiles, parallel to Forest.Trees.
	PerTree []TreeStats
	// Usage is every node's summed usage across all trees.
	Usage map[model.NodeID]float64
	// CentralUsage is the central collector's receive cost (sum of root
	// message costs).
	CentralUsage float64
	// Collected is the number of node-attribute pairs delivered to the
	// central node — the planner's objective.
	Collected int
	// TotalCost is the total capacity consumed by the plan per collection
	// round (all sends and receives, including the central node's).
	TotalCost float64
}

// ComputeStats evaluates the forest against demand d on system sys with
// aggregation spec (nil for holistic).
func (f *Forest) ComputeStats(d *task.Demand, sys *model.System, spec *agg.Spec) Stats {
	st := Stats{
		PerTree: make([]TreeStats, len(f.Trees)),
		Usage:   make(map[model.NodeID]float64),
	}
	for i, t := range f.Trees {
		ts := ComputeTreeStats(t, d, sys, spec)
		st.PerTree[i] = ts
		for n, u := range ts.Usage {
			st.Usage[n] += u
		}
		st.CentralUsage += ts.RootSend
		st.Collected += ts.LocalPairs
	}
	for _, u := range st.Usage {
		st.TotalCost += u
	}
	st.TotalCost += st.CentralUsage
	return st
}

// Score is the planner's plan-comparison key: more collected pairs wins;
// ties break toward lower total cost.
type Score struct {
	Collected int
	TotalCost float64
}

// Better reports whether s is strictly better than o.
func (s Score) Better(o Score) bool {
	if s.Collected != o.Collected {
		return s.Collected > o.Collected
	}
	return s.TotalCost < o.TotalCost-1e-9
}

// Score extracts the comparison key from stats.
func (st Stats) Score() Score {
	return Score{Collected: st.Collected, TotalCost: st.TotalCost}
}

// Validation errors.
var (
	ErrOverlappingSets = errors.New("plan: tree attribute sets overlap")
	ErrNonParticipant  = errors.New("plan: tree member demands none of the tree's attributes")
	ErrOverCapacity    = errors.New("plan: node capacity exceeded")
	ErrUnknownMember   = errors.New("plan: tree member not in system")
)

// Validate checks that the forest is a legal plan for demand d on system
// sys: structurally sound trees, disjoint attribute sets, members that
// actually demand tree attributes, and no capacity violations under the
// aggregation spec.
func (f *Forest) Validate(d *task.Demand, sys *model.System, spec *agg.Spec) error {
	for i, t := range f.Trees {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		if t.Attrs.Empty() {
			return fmt.Errorf("tree %d: empty attribute set", i)
		}
		for j := i + 1; j < len(f.Trees); j++ {
			if t.Attrs.IntersectsAny(f.Trees[j].Attrs) {
				return fmt.Errorf("%w: trees %d and %d", ErrOverlappingSets, i, j)
			}
		}
		for _, n := range t.Members() {
			if _, ok := sys.Node(n); !ok {
				return fmt.Errorf("%w: %v in tree %d", ErrUnknownMember, n, i)
			}
			if len(d.LocalAttrs(n, t.Attrs)) == 0 {
				return fmt.Errorf("%w: %v in tree %v", ErrNonParticipant, n, t.Attrs)
			}
		}
	}

	st := f.ComputeStats(d, sys, spec)
	const eps = 1e-6
	for n, u := range st.Usage {
		if u > sys.Capacity(n)+eps {
			return fmt.Errorf("%w: %v uses %.3f of %.3f", ErrOverCapacity, n, u, sys.Capacity(n))
		}
	}
	if st.CentralUsage > sys.CentralCapacity+eps {
		return fmt.Errorf("%w: central uses %.3f of %.3f",
			ErrOverCapacity, st.CentralUsage, sys.CentralCapacity)
	}
	return nil
}

// CollectedPairs returns the node-attribute pairs the plan delivers,
// ordered by node then attribute.
func (f *Forest) CollectedPairs(d *task.Demand) []model.Pair {
	var pairs []model.Pair
	for _, t := range f.Trees {
		for _, n := range t.Members() {
			for _, a := range d.LocalAttrs(n, t.Attrs) {
				pairs = append(pairs, model.Pair{Node: n, Attr: a})
			}
		}
	}
	model.SortPairs(pairs)
	return pairs
}

// MissedPairs returns the demanded pairs the plan does not deliver
// (nodes excluded from their attribute's tree, or attributes assigned to
// no tree).
func (f *Forest) MissedPairs(d *task.Demand) []model.Pair {
	covered := make(map[model.Pair]struct{})
	for _, p := range f.CollectedPairs(d) {
		covered[p] = struct{}{}
	}
	var missed []model.Pair
	for _, p := range d.Pairs() {
		if _, ok := covered[p]; !ok {
			missed = append(missed, p)
		}
	}
	return missed
}

// Edges returns every parent link in the forest, sorted by tree key then
// child, for adaptation-cost accounting.
func (f *Forest) Edges() []Edge {
	var edges []Edge
	for _, t := range f.Trees {
		edges = append(edges, t.Edges()...)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Tree != edges[j].Tree {
			return edges[i].Tree < edges[j].Tree
		}
		return edges[i].Child < edges[j].Child
	})
	return edges
}

// DiffEdges counts the parent links present in exactly one of the two
// forests — the number of connect/disconnect control messages needed to
// move the running overlay from plan a to plan b.
func DiffEdges(a, b *Forest) int {
	setA := make(map[Edge]struct{})
	for _, e := range a.Edges() {
		setA[e] = struct{}{}
	}
	diff := 0
	for _, e := range b.Edges() {
		if _, ok := setA[e]; ok {
			delete(setA, e)
		} else {
			diff++
		}
	}
	return diff + len(setA)
}
