package plan

import "remo/internal/model"

// Test-only corruption hooks: the public Tree API cannot construct an
// inconsistent tree (AddNode/RemoveNode/Reparent keep parent and child
// links in sync), so mutation tests that prove the verifier rejects
// corrupted structures reach around it here.

// CorruptParentForTest redirects member n's parent link without
// touching the children index, producing an orphaned edge.
func (t *Tree) CorruptParentForTest(n, fakeParent model.NodeID) {
	t.parent[n] = fakeParent
}

// CorruptDetachForTest removes n from its parent's child list without
// touching the parent link, disconnecting n's subtree from the root.
func (t *Tree) CorruptDetachForTest(n model.NodeID) {
	p := t.parent[n]
	kids := t.children[p]
	for i, c := range kids {
		if c == n {
			t.children[p] = append(kids[:i], kids[i+1:]...)
			return
		}
	}
}
