package plan

import (
	"errors"
	"testing"

	"remo/internal/model"
)

func buildChain(t *testing.T, attrs model.AttrSet, ids ...model.NodeID) *Tree {
	t.Helper()
	tr := NewTree(attrs)
	prev := model.Central
	for _, id := range ids {
		if err := tr.AddNode(id, prev); err != nil {
			t.Fatalf("AddNode(%v, %v): %v", id, prev, err)
		}
		prev = id
	}
	return tr
}

func TestTreeAddNode(t *testing.T) {
	tr := NewTree(model.NewAttrSet(1))
	if err := tr.AddNode(1, model.Central); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 1 || tr.Size() != 1 {
		t.Fatalf("root=%v size=%d", tr.Root(), tr.Size())
	}
	if err := tr.AddNode(2, model.Central); !errors.Is(err, ErrHasRoot) {
		t.Fatalf("second root error = %v", err)
	}
	if err := tr.AddNode(2, 9); !errors.Is(err, ErrParentMissing) {
		t.Fatalf("missing parent error = %v", err)
	}
	if err := tr.AddNode(1, 1); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate error = %v", err)
	}
	if err := tr.AddNode(model.Central, 1); !errors.Is(err, ErrCentralMember) {
		t.Fatalf("central member error = %v", err)
	}
	if err := tr.AddNode(2, 1); err != nil {
		t.Fatal(err)
	}
	p, ok := tr.Parent(2)
	if !ok || p != 1 {
		t.Fatalf("Parent(2) = %v, %v", p, ok)
	}
}

func TestTreeDepthHeight(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	if err := tr.AddNode(4, 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.Depth(3); got != 3 {
		t.Fatalf("Depth(3) = %d, want 3", got)
	}
	if got := tr.Depth(4); got != 2 {
		t.Fatalf("Depth(4) = %d, want 2", got)
	}
	if got := tr.Height(); got != 3 {
		t.Fatalf("Height = %d, want 3", got)
	}
	if got := tr.Depth(99); got != 0 {
		t.Fatalf("Depth(absent) = %d, want 0", got)
	}
}

func TestTreePostOrder(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	seen := make(map[model.NodeID]bool)
	for _, n := range tr.PostOrder() {
		for _, c := range tr.Children(n) {
			if !seen[c] {
				t.Fatalf("post-order visited %v before child %v", n, c)
			}
		}
		seen[n] = true
	}
	if len(seen) != 3 {
		t.Fatalf("post-order visited %d nodes, want 3", len(seen))
	}
}

func TestTreeRemoveSubtree(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	if err := tr.AddNode(4, 2); err != nil {
		t.Fatal(err)
	}
	removed, err := tr.RemoveSubtree(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 { // 2, 3, 4
		t.Fatalf("removed %v, want 3 nodes", removed)
	}
	if tr.Size() != 1 || tr.Contains(2) || tr.Contains(3) || tr.Contains(4) {
		t.Fatalf("tree after removal: size=%d", tr.Size())
	}
	if _, err := tr.RemoveSubtree(2); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("double remove error = %v", err)
	}
	// Removing the root empties the tree.
	if _, err := tr.RemoveSubtree(1); err != nil {
		t.Fatal(err)
	}
	if !tr.Empty() || tr.Root() != model.Central {
		t.Fatal("tree not empty after removing root")
	}
}

func TestTreeReparent(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	if err := tr.AddNode(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reparent(4, 3); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(4); p != 3 {
		t.Fatalf("Parent(4) = %v, want 3", p)
	}
	// Cannot move a node under its own descendant.
	if err := tr.Reparent(2, 4); err == nil {
		t.Fatal("reparent under descendant succeeded")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after reparent: %v", err)
	}
}

func TestTreePathToRoot(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	path := tr.PathToRoot(3)
	if len(path) != 2 || path[0] != 2 || path[1] != 1 {
		t.Fatalf("PathToRoot(3) = %v, want [2 1]", path)
	}
	if got := tr.PathToRoot(1); len(got) != 0 {
		t.Fatalf("PathToRoot(root) = %v, want empty", got)
	}
}

func TestTreeCloneIndependent(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2)
	c := tr.Clone()
	if err := c.AddNode(3, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Contains(3) {
		t.Fatal("clone mutation leaked")
	}
}

func TestTreeEdgesAndDiff(t *testing.T) {
	a := NewForest()
	a.Add(buildChain(t, model.NewAttrSet(1), 1, 2, 3))

	b := NewForest()
	tr := buildChain(t, model.NewAttrSet(1), 1, 2)
	if err := tr.AddNode(3, 1); err != nil { // 3 moved under 1
		t.Fatal(err)
	}
	b.Add(tr)

	if got := DiffEdges(a, a.Clone()); got != 0 {
		t.Fatalf("DiffEdges(a, a) = %d", got)
	}
	// Edge 3->2 removed, 3->1 added: 2 changes.
	if got := DiffEdges(a, b); got != 2 {
		t.Fatalf("DiffEdges = %d, want 2", got)
	}
}

func TestTreeValidate(t *testing.T) {
	tr := buildChain(t, model.NewAttrSet(1), 1, 2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := NewTree(model.NewAttrSet(1))
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty tree invalid: %v", err)
	}
}

func TestTreeFingerprint(t *testing.T) {
	mk := func() *Tree {
		tr := NewTree(model.NewAttrSet(1, 2))
		mustAddNodes(t, tr, [][2]model.NodeID{
			{1, model.Central}, {2, 1}, {3, 1}, {4, 2},
		})
		return tr
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical trees fingerprint differently")
	}
	if got := a.Clone().Fingerprint(); got != a.Fingerprint() {
		t.Fatal("clone fingerprint differs from original")
	}
	// Different structure (4 under 3 instead of 2) must differ.
	c := NewTree(model.NewAttrSet(1, 2))
	mustAddNodes(t, c, [][2]model.NodeID{
		{1, model.Central}, {2, 1}, {3, 1}, {4, 3},
	})
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different structures share a fingerprint")
	}
	// Different attribute set must differ.
	e := NewTree(model.NewAttrSet(1, 3))
	mustAddNodes(t, e, [][2]model.NodeID{
		{1, model.Central}, {2, 1}, {3, 1}, {4, 2},
	})
	if e.Fingerprint() == a.Fingerprint() {
		t.Fatal("different attr sets share a fingerprint")
	}
}

func mustAddNodes(t *testing.T, tr *Tree, edges [][2]model.NodeID) {
	t.Helper()
	for _, e := range edges {
		if err := tr.AddNode(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
}
