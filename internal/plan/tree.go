// Package plan defines REMO's monitoring plan structures: collection
// trees, forests of trees, per-node resource usage accounting, plan
// scoring and plan validation.
//
// A plan (Forest) partitions the monitored attributes into disjoint
// attribute sets and assigns each set a collection tree. Within a tree,
// every member node periodically sends one update message to its parent
// carrying its locally observed values plus the values relayed for its
// descendants, for the attributes the tree delivers. Tree roots send to
// the central data collector.
package plan

import (
	"errors"
	"fmt"

	"remo/internal/model"
)

// Errors returned by tree mutations.
var (
	ErrNodeExists    = errors.New("plan: node already in tree")
	ErrNodeMissing   = errors.New("plan: node not in tree")
	ErrParentMissing = errors.New("plan: parent not in tree")
	ErrHasRoot       = errors.New("plan: tree already has a root")
	ErrCentralMember = errors.New("plan: central node cannot be a tree member")
)

// Tree is one collection tree: a set of member nodes with parent links,
// rooted at Root whose parent is the central collector. Attrs is the
// attribute set the tree delivers.
type Tree struct {
	// Attrs is the attribute set assigned to this tree by the partition.
	Attrs model.AttrSet

	root     model.NodeID
	parent   map[model.NodeID]model.NodeID
	children map[model.NodeID][]model.NodeID
}

// NewTree returns an empty tree delivering the given attribute set.
func NewTree(attrs model.AttrSet) *Tree {
	return &Tree{
		Attrs:    attrs,
		root:     model.Central,
		parent:   make(map[model.NodeID]model.NodeID),
		children: make(map[model.NodeID][]model.NodeID),
	}
}

// Root returns the tree's root, or model.Central if the tree is empty.
func (t *Tree) Root() model.NodeID { return t.root }

// Size returns the number of member nodes.
func (t *Tree) Size() int { return len(t.parent) }

// Empty reports whether the tree has no members.
func (t *Tree) Empty() bool { return len(t.parent) == 0 }

// Contains reports whether n is a member of the tree.
func (t *Tree) Contains(n model.NodeID) bool {
	_, ok := t.parent[n]
	return ok
}

// Parent returns the parent of member n. The root's parent is
// model.Central. ok is false if n is not a member.
func (t *Tree) Parent(n model.NodeID) (parent model.NodeID, ok bool) {
	parent, ok = t.parent[n]
	return parent, ok
}

// Children returns the children of n (or of the central node for n ==
// model.Central, which yields the root). The returned slice must not be
// modified.
func (t *Tree) Children(n model.NodeID) []model.NodeID {
	return t.children[n]
}

// Members returns all member nodes in breadth-first order from the root.
func (t *Tree) Members() []model.NodeID {
	if t.Empty() {
		return nil
	}
	out := make([]model.NodeID, 0, len(t.parent))
	queue := []model.NodeID{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		queue = append(queue, t.children[n]...)
	}
	return out
}

// PostOrder returns member nodes so that every node appears after all of
// its descendants (children before parents), as needed for bottom-up cost
// computation.
func (t *Tree) PostOrder() []model.NodeID {
	bfs := t.Members()
	for i, j := 0, len(bfs)-1; i < j; i, j = i+1, j-1 {
		bfs[i], bfs[j] = bfs[j], bfs[i]
	}
	return bfs
}

// Depth returns the number of hops from n to the central node (the root
// has depth 1). It returns 0 if n is not a member.
func (t *Tree) Depth(n model.NodeID) int {
	if !t.Contains(n) {
		return 0
	}
	d := 0
	for n != model.Central {
		n = t.parent[n]
		d++
	}
	return d
}

// Height returns the maximum depth over all members (0 for an empty
// tree).
func (t *Tree) Height() int {
	var h int
	depth := map[model.NodeID]int{model.Central: 0}
	for _, n := range t.Members() {
		d := depth[t.parent[n]] + 1
		depth[n] = d
		if d > h {
			h = d
		}
	}
	return h
}

// PathToRoot returns the ancestors of n from its parent up to and
// excluding the central node (so the last element is the tree root). It
// returns nil if n is not a member.
func (t *Tree) PathToRoot(n model.NodeID) []model.NodeID {
	if !t.Contains(n) {
		return nil
	}
	var path []model.NodeID
	for p := t.parent[n]; p != model.Central; p = t.parent[p] {
		path = append(path, p)
	}
	return path
}

// AddNode attaches node n as a child of parent. The first node must use
// model.Central as parent and becomes the root.
func (t *Tree) AddNode(n, parent model.NodeID) error {
	if n.IsCentral() {
		return ErrCentralMember
	}
	if t.Contains(n) {
		return fmt.Errorf("%w: %v", ErrNodeExists, n)
	}
	if parent.IsCentral() {
		if !t.Empty() {
			return fmt.Errorf("%w: cannot attach %v to central", ErrHasRoot, n)
		}
		t.root = n
	} else if !t.Contains(parent) {
		return fmt.Errorf("%w: %v", ErrParentMissing, parent)
	}
	t.parent[n] = parent
	t.children[parent] = append(t.children[parent], n)
	return nil
}

// Subtree returns n and all of its descendants in breadth-first order. It
// returns nil if n is not a member.
func (t *Tree) Subtree(n model.NodeID) []model.NodeID {
	if !t.Contains(n) {
		return nil
	}
	out := []model.NodeID{n}
	for i := 0; i < len(out); i++ {
		out = append(out, t.children[out[i]]...)
	}
	return out
}

// RemoveSubtree detaches n and its whole subtree from the tree, returning
// the removed nodes in breadth-first order (so they can be re-added in
// a valid order). Removing the root empties the tree.
func (t *Tree) RemoveSubtree(n model.NodeID) ([]model.NodeID, error) {
	if !t.Contains(n) {
		return nil, fmt.Errorf("%w: %v", ErrNodeMissing, n)
	}
	removed := t.Subtree(n)
	p := t.parent[n]
	t.children[p] = removeID(t.children[p], n)
	for _, m := range removed {
		delete(t.parent, m)
		delete(t.children, m)
	}
	if n == t.root {
		t.root = model.Central
	}
	return removed, nil
}

// Reparent moves member n (with its subtree) under newParent, which must
// be a member outside n's subtree.
func (t *Tree) Reparent(n, newParent model.NodeID) error {
	if !t.Contains(n) {
		return fmt.Errorf("%w: %v", ErrNodeMissing, n)
	}
	if !t.Contains(newParent) {
		return fmt.Errorf("%w: %v", ErrParentMissing, newParent)
	}
	for _, m := range t.Subtree(n) {
		if m == newParent {
			return fmt.Errorf("plan: reparent %v under its own descendant %v", n, newParent)
		}
	}
	old := t.parent[n]
	t.children[old] = removeID(t.children[old], n)
	t.parent[n] = newParent
	t.children[newParent] = append(t.children[newParent], n)
	return nil
}

// Edge is one parent link of a tree; Parent may be model.Central for the
// root edge.
type Edge struct {
	Child  model.NodeID
	Parent model.NodeID
	// Tree is the attribute-set key of the tree the edge belongs to,
	// distinguishing edges of different trees in forest diffs.
	Tree string
}

// Edges returns the tree's parent links (including the root's link to the
// central node) ordered by child id.
func (t *Tree) Edges() []Edge {
	edges := make([]Edge, 0, len(t.parent))
	key := t.Attrs.Key()
	for _, n := range t.Members() {
		edges = append(edges, Edge{Child: n, Parent: t.parent[n], Tree: key})
	}
	return edges
}

// Clone returns a deep copy of the tree. Maps are sized up front and
// child slices copied exactly, so cloning is a cheap O(members)
// operation — cheap enough that the planner's tree-build memo clones on
// every insert and hit rather than rebuilding trees.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		Attrs:    t.Attrs,
		root:     t.root,
		parent:   make(map[model.NodeID]model.NodeID, len(t.parent)),
		children: make(map[model.NodeID][]model.NodeID, len(t.children)),
	}
	for n, p := range t.parent {
		c.parent[n] = p
	}
	for n, ch := range t.children {
		cp := make([]model.NodeID, len(ch))
		copy(cp, ch)
		c.children[n] = cp
	}
	return c
}

// Fingerprint returns a 64-bit FNV-1a digest of the tree's identity:
// its attribute set and every parent link in deterministic (BFS)
// member order. Two trees with equal fingerprints are, up to hash
// collision, structurally identical — clones share their original's
// fingerprint, which lets tests and the planner's tree-build memo
// compare trees without walking both.
func (t *Tree) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, a := range t.Attrs.Attrs() {
		mix(uint64(a))
	}
	mix(uint64(len(t.parent)))
	for _, n := range t.Members() {
		mix(uint64(n))
		mix(uint64(t.parent[n]))
	}
	return h
}

// Validate checks the structural integrity of the tree: a single root
// attached to the central node and acyclic parent links covering every
// member.
func (t *Tree) Validate() error {
	if t.Empty() {
		return nil
	}
	if !t.Contains(t.root) {
		return fmt.Errorf("plan: root %v not a member", t.root)
	}
	if p := t.parent[t.root]; p != model.Central {
		return fmt.Errorf("plan: root %v has parent %v", t.root, p)
	}
	reached := t.Members()
	if len(reached) != len(t.parent) {
		return fmt.Errorf("plan: tree disconnected: reached %d of %d members",
			len(reached), len(t.parent))
	}
	for n, p := range t.parent {
		if n == t.root {
			continue
		}
		if !t.Contains(p) {
			return fmt.Errorf("plan: member %v has non-member parent %v", n, p)
		}
	}
	return nil
}

func removeID(ids []model.NodeID, n model.NodeID) []model.NodeID {
	for i, x := range ids {
		if x == n {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
