package plan

import (
	"reflect"
	"testing"

	"remo/internal/model"
)

// diffForest builds a forest from chain trees keyed (attrs, members).
func diffForest(t *testing.T, trees ...*Tree) *Forest {
	t.Helper()
	f := NewForest()
	for _, tr := range trees {
		f.Add(tr)
	}
	return f
}

func TestDiffForestsKeptRebuiltDropped(t *testing.T) {
	a1 := buildChain(t, model.NewAttrSet(1), 1, 2)
	a2 := buildChain(t, model.NewAttrSet(2), 3)
	a3 := buildChain(t, model.NewAttrSet(3), 4, 5)
	old := diffForest(t, a1, a2, a3)

	// New forest: tree {1} identical (kept), tree {2} restructured under
	// the same key (rebuilt, not dropped), tree {3} gone (dropped), tree
	// {4} brand new (rebuilt).
	b1 := buildChain(t, model.NewAttrSet(1), 1, 2)
	b2 := buildChain(t, model.NewAttrSet(2), 3, 6)
	b4 := buildChain(t, model.NewAttrSet(4), 7)
	next := diffForest(t, b1, b2, b4)

	d := DiffForests(old, next)
	if !reflect.DeepEqual(d.Kept, []string{"1"}) {
		t.Fatalf("Kept = %v, want [1]", d.Kept)
	}
	if !reflect.DeepEqual(d.Rebuilt, []string{"2", "4"}) {
		t.Fatalf("Rebuilt = %v, want [2 4]", d.Rebuilt)
	}
	if !reflect.DeepEqual(d.Dropped, []string{"3"}) {
		t.Fatalf("Dropped = %v, want [3]", d.Dropped)
	}
	if got, want := d.ReusePct(), 100.0/3; got != want {
		t.Fatalf("ReusePct = %v, want %v", got, want)
	}
}

// TestDiffForestsFingerprintMultiset pins the multiset matching: two
// identically shaped trees in the old forest can each be claimed at
// most once by the new forest.
func TestDiffForestsFingerprintMultiset(t *testing.T) {
	// Same structure, different attr sets → different fingerprints; use
	// genuinely identical duplicates via Clone on a fresh forest.
	a := buildChain(t, model.NewAttrSet(1), 1, 2)
	old := diffForest(t, a, a.Clone())
	next := diffForest(t, a.Clone(), a.Clone(), a.Clone())

	d := DiffForests(old, next)
	if len(d.Kept) != 2 || len(d.Rebuilt) != 1 {
		t.Fatalf("kept %d rebuilt %d, want 2 kept and 1 rebuilt", len(d.Kept), len(d.Rebuilt))
	}
}

func TestDiffForestsEmptyAndNil(t *testing.T) {
	d := DiffForests(NewForest(), NewForest())
	if len(d.Kept)+len(d.Rebuilt)+len(d.Dropped) != 0 {
		t.Fatalf("empty diff = %+v", d)
	}
	if d.ReusePct() != 0 {
		t.Fatalf("empty ReusePct = %v, want 0", d.ReusePct())
	}
	tr := buildChain(t, model.NewAttrSet(5), 8)
	d = DiffForests(nil, diffForest(t, tr))
	if len(d.Rebuilt) != 1 || len(d.Kept) != 0 {
		t.Fatalf("nil-old diff = %+v", d)
	}
	d = DiffForests(diffForest(t, tr), nil)
	if len(d.Dropped) != 1 {
		t.Fatalf("nil-new diff = %+v", d)
	}
}
