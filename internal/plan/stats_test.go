package plan

import (
	"math"
	"testing"

	"remo/internal/agg"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/task"
)

// testEnv builds a 3-node system (C=10, a=1) where every node demands
// attribute 1 with weight 1.
func testEnv(t *testing.T) (*model.System, *task.Demand) {
	t.Helper()
	nodes := []model.Node{
		{ID: 1, Capacity: 1000, Attrs: []model.AttrID{1}},
		{ID: 2, Capacity: 1000, Attrs: []model.AttrID{1}},
		{ID: 3, Capacity: 1000, Attrs: []model.AttrID{1}},
	}
	sys, err := model.NewSystem(1000, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	for _, n := range sys.NodeIDs() {
		d.Set(n, 1, 1)
	}
	return sys, d
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestComputeTreeStatsChain(t *testing.T) {
	sys, d := testEnv(t)
	// central <- 1 <- 2 <- 3, each contributing one value.
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	st := ComputeTreeStats(tr, d, sys, nil)

	// y3=1 u3=11; y2=2 u2=12; y1=3 u1=13.
	if !almost(st.Out[3], 1) || !almost(st.Out[2], 2) || !almost(st.Out[1], 3) {
		t.Fatalf("Out = %v", st.Out)
	}
	if !almost(st.Send[3], 11) || !almost(st.Send[2], 12) || !almost(st.Send[1], 13) {
		t.Fatalf("Send = %v", st.Send)
	}
	// usage: n3 = 11; n2 = 12+11 = 23; n1 = 13+12 = 25.
	if !almost(st.Usage[3], 11) || !almost(st.Usage[2], 23) || !almost(st.Usage[1], 25) {
		t.Fatalf("Usage = %v", st.Usage)
	}
	if !almost(st.RootSend, 13) {
		t.Fatalf("RootSend = %v, want 13", st.RootSend)
	}
	if st.LocalPairs != 3 {
		t.Fatalf("LocalPairs = %d, want 3", st.LocalPairs)
	}
	if !almost(st.TotalUsage(), 11+23+25+13) {
		t.Fatalf("TotalUsage = %v", st.TotalUsage())
	}
}

func TestComputeTreeStatsStar(t *testing.T) {
	sys, d := testEnv(t)
	tr := NewTree(model.NewAttrSet(1))
	for i, p := range []model.NodeID{model.Central, 1, 1} {
		if err := tr.AddNode(model.NodeID(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	st := ComputeTreeStats(tr, d, sys, nil)
	// Leaves: y=1 u=11 each. Root: y=3 u=13, usage=13+22=35.
	if !almost(st.Usage[1], 35) {
		t.Fatalf("root Usage = %v, want 35", st.Usage[1])
	}
	if !almost(st.RootSend, 13) {
		t.Fatalf("RootSend = %v", st.RootSend)
	}
}

func TestComputeTreeStatsWithSumFunnel(t *testing.T) {
	sys, d := testEnv(t)
	spec := agg.NewSpec()
	spec.SetKind(1, agg.Sum)
	tr := buildChain(t, model.NewAttrSet(1), 1, 2, 3)
	st := ComputeTreeStats(tr, d, sys, spec)
	// Every node emits a single partial sum: y=1, u=11 everywhere.
	for _, n := range []model.NodeID{1, 2, 3} {
		if !almost(st.Out[n], 1) || !almost(st.Send[n], 11) {
			t.Fatalf("node %v: out=%v send=%v, want 1/11", n, st.Out[n], st.Send[n])
		}
	}
	// usage: n3=11, n2=11+11=22, n1=22.
	if !almost(st.Usage[2], 22) || !almost(st.Usage[1], 22) {
		t.Fatalf("Usage = %v", st.Usage)
	}
}

func TestComputeTreeStatsEmptyTree(t *testing.T) {
	sys, d := testEnv(t)
	st := ComputeTreeStats(NewTree(model.NewAttrSet(1)), d, sys, nil)
	if st.LocalPairs != 0 || st.RootSend != 0 || st.TotalUsage() != 0 {
		t.Fatalf("empty tree stats = %+v", st)
	}
}

func TestForestStatsAndValidate(t *testing.T) {
	sys, d := testEnv(t)
	d.Set(1, 2, 1) // node 1 also reports attr 2
	f := NewForest()
	f.Add(buildChain(t, model.NewAttrSet(1), 1, 2, 3))
	t2 := NewTree(model.NewAttrSet(2))
	if err := t2.AddNode(1, model.Central); err != nil {
		t.Fatal(err)
	}
	f.Add(t2)

	st := f.ComputeStats(d, sys, nil)
	if st.Collected != 4 {
		t.Fatalf("Collected = %d, want 4", st.Collected)
	}
	// Node 1 usage: 25 (tree 1) + 11 (tree 2 root send).
	if !almost(st.Usage[1], 36) {
		t.Fatalf("Usage[1] = %v, want 36", st.Usage[1])
	}
	if !almost(st.CentralUsage, 13+11) {
		t.Fatalf("CentralUsage = %v, want 24", st.CentralUsage)
	}
	if err := f.Validate(d, sys, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestForestValidateRejectsOverlap(t *testing.T) {
	sys, d := testEnv(t)
	f := NewForest()
	f.Add(buildChain(t, model.NewAttrSet(1), 1))
	f.Add(buildChain(t, model.NewAttrSet(1), 2))
	if err := f.Validate(d, sys, nil); err == nil {
		t.Fatal("overlapping attr sets validated")
	}
}

func TestForestValidateRejectsOverCapacity(t *testing.T) {
	nodes := []model.Node{
		{ID: 1, Capacity: 20, Attrs: []model.AttrID{1}},
		{ID: 2, Capacity: 20, Attrs: []model.AttrID{1}},
	}
	sys, err := model.NewSystem(1000, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(2, 1, 1)
	f := NewForest()
	// Chain 1<-2: node 1 usage = 12+11 = 23 > 20.
	f.Add(buildChain(t, model.NewAttrSet(1), 1, 2))
	if err := f.Validate(d, sys, nil); err == nil {
		t.Fatal("over-capacity forest validated")
	}
}

func TestForestValidateRejectsNonParticipant(t *testing.T) {
	sys, d := testEnv(t)
	f := NewForest()
	// Node 3 demands nothing for attr 2.
	tr := NewTree(model.NewAttrSet(2))
	if err := tr.AddNode(3, model.Central); err != nil {
		t.Fatal(err)
	}
	f.Add(tr)
	if err := f.Validate(d, sys, nil); err == nil {
		t.Fatal("non-participant member validated")
	}
}

func TestForestMissedPairs(t *testing.T) {
	sys, d := testEnv(t)
	_ = sys
	f := NewForest()
	f.Add(buildChain(t, model.NewAttrSet(1), 1, 2)) // node 3 excluded
	missed := f.MissedPairs(d)
	if len(missed) != 1 || missed[0] != (model.Pair{Node: 3, Attr: 1}) {
		t.Fatalf("MissedPairs = %v", missed)
	}
	collected := f.CollectedPairs(d)
	if len(collected) != 2 {
		t.Fatalf("CollectedPairs = %v", collected)
	}
}

func TestForestTreeFor(t *testing.T) {
	f := NewForest()
	f.Add(NewTree(model.NewAttrSet(1, 2)))
	f.Add(NewTree(model.NewAttrSet(3)))
	if tr := f.TreeFor(2); tr == nil || !tr.Attrs.Contains(2) {
		t.Fatal("TreeFor(2) wrong")
	}
	if tr := f.TreeFor(9); tr != nil {
		t.Fatal("TreeFor(9) found a tree")
	}
}

func TestScoreBetter(t *testing.T) {
	tests := []struct {
		name string
		a, b Score
		want bool
	}{
		{"more collected wins", Score{Collected: 5, TotalCost: 100}, Score{Collected: 4, TotalCost: 1}, true},
		{"fewer collected loses", Score{Collected: 3, TotalCost: 1}, Score{Collected: 4, TotalCost: 1}, false},
		{"tie cheaper wins", Score{Collected: 4, TotalCost: 50}, Score{Collected: 4, TotalCost: 60}, true},
		{"identical not better", Score{Collected: 4, TotalCost: 50}, Score{Collected: 4, TotalCost: 50}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Better(tt.b); got != tt.want {
				t.Fatalf("Better = %v, want %v", got, tt.want)
			}
		})
	}
}
