package plan

import "sort"

// Diff relates a replanned forest to the plan it replaces, matched
// tree-by-tree via the FNV-1a tree fingerprints. A tree whose
// fingerprint appears in both forests was kept byte-for-byte: its
// members' overlay state survives the swap and nothing needs to be
// re-announced to them. The three slices hold the trees' attribute-set
// keys, sorted, so callers can trace or display per-tree outcomes.
type Diff struct {
	// Kept lists trees present in both forests (identical fingerprint).
	Kept []string
	// Rebuilt lists new-forest trees with no identical counterpart —
	// reshaped, restructured, or brand new.
	Rebuilt []string
	// Dropped lists old-forest attribute sets that no longer have any
	// tree in the new forest.
	Dropped []string
}

// ReusePct is the fraction of the new forest's trees reused
// byte-for-byte, in percent (0 for an empty new forest).
func (d Diff) ReusePct() float64 {
	total := len(d.Kept) + len(d.Rebuilt)
	if total == 0 {
		return 0
	}
	return 100 * float64(len(d.Kept)) / float64(total)
}

// DiffForests computes the tree-level diff from forest a to forest b.
// Trees match when their fingerprints are equal (attribute set plus
// full parent structure); among the rest, an old attribute set still
// present in b counts as rebuilt there, while one absent from b
// entirely is dropped. A nil forest diffs as an empty one, so the
// first install of a session reports every tree as rebuilt.
func DiffForests(a, b *Forest) Diff {
	if a == nil {
		a = NewForest()
	}
	if b == nil {
		b = NewForest()
	}
	oldFPs := make(map[uint64]int, len(a.Trees))
	oldKeys := make(map[string]struct{}, len(a.Trees))
	for _, t := range a.Trees {
		oldFPs[t.Fingerprint()]++
		oldKeys[t.Attrs.Key()] = struct{}{}
	}
	var d Diff
	newKeys := make(map[string]struct{}, len(b.Trees))
	for _, t := range b.Trees {
		k := t.Attrs.Key()
		newKeys[k] = struct{}{}
		if fp := t.Fingerprint(); oldFPs[fp] > 0 {
			oldFPs[fp]--
			d.Kept = append(d.Kept, k)
		} else {
			d.Rebuilt = append(d.Rebuilt, k)
		}
	}
	for k := range oldKeys {
		if _, still := newKeys[k]; !still {
			d.Dropped = append(d.Dropped, k)
		}
	}
	sort.Strings(d.Kept)
	sort.Strings(d.Rebuilt)
	sort.Strings(d.Dropped)
	return d
}
