package plan

import (
	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/task"
)

// TreeStats holds the per-node resource profile of one tree under the
// cost model: for every member i, the weighted outgoing value count y_i,
// the update message cost u_i = C + a·y_i, and the total usage
// u_i + Σ_{children j} u_j.
type TreeStats struct {
	// Out is y_i: the weighted number of attribute values node i forwards
	// to its parent (after any in-network aggregation funnels).
	Out map[model.NodeID]float64
	// Send is node i's sending cost: the endpoint message cost
	// C + a·y_i scaled by the system's distance factor to its parent
	// (factor 1 under the datacenter assumption).
	Send map[model.NodeID]float64
	// Usage is node i's total resource consumption in this tree: sending
	// its own message plus receiving its children's messages (receive
	// cost is the unscaled endpoint cost).
	Usage map[model.NodeID]float64
	// RootSend is the root message's endpoint cost, paid as receive cost
	// by the central collector.
	RootSend float64
	// LocalPairs is the number of node-attribute pairs the tree collects
	// (every member's demanded attributes within the tree's set).
	LocalPairs int
}

// ComputeTreeStats derives the resource profile of tree t for demand d
// under the system's cost model. spec provides in-network aggregation
// funnels; a nil spec means holistic collection.
func ComputeTreeStats(t *Tree, d *task.Demand, sys *model.System, spec *agg.Spec) TreeStats {
	st := TreeStats{
		Out:   make(map[model.NodeID]float64, t.Size()),
		Send:  make(map[model.NodeID]float64, t.Size()),
		Usage: make(map[model.NodeID]float64, t.Size()),
	}
	if t.Empty() {
		return st
	}

	attrs := t.Attrs.Attrs()
	// in[n][k] accumulates the weighted incoming count of attrs[k] at n.
	in := make(map[model.NodeID][]float64, t.Size())
	idx := make(map[model.AttrID]int, len(attrs))
	for k, a := range attrs {
		idx[a] = k
	}

	for _, n := range t.PostOrder() {
		counts := in[n]
		if counts == nil {
			counts = make([]float64, len(attrs))
		}
		// Add locally demanded values.
		for _, a := range d.LocalAttrs(n, t.Attrs) {
			counts[idx[a]] += d.Weight(n, a)
			st.LocalPairs++
		}
		// Apply funnels to obtain outgoing counts.
		var y float64
		out := make([]float64, len(attrs))
		for k, a := range attrs {
			out[k] = spec.Out(a, counts[k])
			y += out[k]
		}
		st.Out[n] = y
		endpoint := sys.Cost.PerMessage + sys.Cost.PerValue*y
		p, _ := t.Parent(n)
		send := endpoint * sys.Dist(n, p)
		st.Send[n] = send
		st.Usage[n] += send

		// Credit the parent: receive cost now, payload forwarded later.
		if p.IsCentral() {
			st.RootSend = endpoint
			continue
		}
		st.Usage[p] += endpoint
		pc := in[p]
		if pc == nil {
			pc = make([]float64, len(attrs))
			in[p] = pc
		}
		for k := range out {
			pc[k] += out[k]
		}
	}
	return st
}

// TotalUsage returns the sum of usage over all members plus the root-send
// cost charged to the central node — the tree's total capacity
// consumption.
func (st TreeStats) TotalUsage() float64 {
	var sum float64
	for _, u := range st.Usage {
		sum += u
	}
	return sum + st.RootSend
}
