package repair

import (
	"math/rand"
	"testing"

	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// env plans a topology for n nodes over nAttrs attributes.
func env(t *testing.T, rng *rand.Rand, n, nAttrs int) (*model.System, *task.Demand, *plan.Forest) {
	t.Helper()
	attrs := make([]model.AttrID, nAttrs)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	nodes := make([]model.Node, n)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 60 + rng.Float64()*60, Attrs: attrs}
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				d.Set(id, a, 1)
			}
		}
		if d.AttrsOf(id).Empty() {
			d.Set(id, attrs[0], 1)
		}
	}
	sys, err := model.NewSystem(500, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewPlanner().Plan(sys, d)
	return sys, d, res.Forest
}

func TestRepairRemovesFailedNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys, d, forest := env(t, rng, 20, 3)

	// Fail two placed nodes, including at least one relay if possible.
	failed := map[model.NodeID]struct{}{}
	for _, tr := range forest.Trees {
		members := tr.Members()
		if len(members) > 1 {
			failed[members[0]] = struct{}{} // the root: forces a rebuild
			break
		}
	}
	if len(failed) == 0 {
		t.Skip("no multi-node tree to break")
	}

	repaired, rep := Repair(Config{Sys: sys, Demand: d}, forest, failed)
	for _, tr := range repaired.Trees {
		for _, n := range tr.Members() {
			if _, dead := failed[n]; dead {
				t.Fatalf("failed node %v still placed", n)
			}
		}
	}
	if rep.TreesRebuilt == 0 || rep.FailedMembers == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.EdgesChanged == 0 {
		t.Fatal("repair changed nothing")
	}

	// The repaired forest is valid for the surviving demand.
	survivors := d.Clone()
	for n := range failed {
		for _, a := range survivors.AttrsOf(n).Attrs() {
			survivors.Remove(n, a)
		}
	}
	if err := repaired.Validate(survivors, sys, nil); err != nil {
		t.Fatalf("repaired forest invalid: %v", err)
	}
}

func TestRepairNoFailuresIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys, d, forest := env(t, rng, 15, 2)
	repaired, rep := Repair(Config{Sys: sys, Demand: d}, forest, nil)
	if rep.TreesRebuilt != 0 || rep.EdgesChanged != 0 || rep.PairsLost != 0 {
		t.Fatalf("no-op repair report = %+v", rep)
	}
	if plan.DiffEdges(forest, repaired) != 0 {
		t.Fatal("no-op repair changed the forest")
	}
}

func TestRepairKeepsUnaffectedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys, d, forest := env(t, rng, 25, 4)
	if len(forest.Trees) < 2 {
		t.Skip("need at least two trees")
	}
	// Fail a node placed in exactly one tree.
	var victim model.NodeID
	var victimTree string
outer:
	for _, tr := range forest.Trees {
		for _, n := range tr.Members() {
			count := 0
			for _, other := range forest.Trees {
				if other.Contains(n) {
					count++
				}
			}
			if count == 1 {
				victim, victimTree = n, tr.Attrs.Key()
				break outer
			}
		}
	}
	if victim == 0 {
		t.Skip("no single-tree node found")
	}
	repaired, _ := Repair(Config{Sys: sys, Demand: d}, forest,
		map[model.NodeID]struct{}{victim: {}})

	// Every other tree survives unchanged (same pointer semantics: same
	// edges).
	oldEdges := make(map[string]int)
	for _, tr := range forest.Trees {
		oldEdges[tr.Attrs.Key()] = tr.Size()
	}
	for _, tr := range repaired.Trees {
		if tr.Attrs.Key() == victimTree {
			continue
		}
		if got := tr.Size(); got != oldEdges[tr.Attrs.Key()] {
			t.Fatalf("unaffected tree %v changed size: %d -> %d",
				tr.Attrs, oldEdges[tr.Attrs.Key()], got)
		}
	}
}

func TestRepairRecoversCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sys, d, forest := env(t, rng, 20, 2)

	// Kill a relay node: its subtree's pairs vanish from the broken
	// forest but a repair reattaches the survivors.
	var victim model.NodeID
	for _, tr := range forest.Trees {
		for _, n := range tr.Members() {
			if len(tr.Children(n)) > 0 && n != tr.Root() {
				victim = n
				break
			}
		}
	}
	if victim == 0 {
		// Fall back to a root with children.
		for _, tr := range forest.Trees {
			if len(tr.Children(tr.Root())) > 0 {
				victim = tr.Root()
				break
			}
		}
	}
	if victim == 0 {
		t.Skip("no relay node found")
	}

	survivors := d.Clone()
	for _, a := range survivors.AttrsOf(victim).Attrs() {
		survivors.Remove(victim, a)
	}

	repaired, _ := Repair(Config{Sys: sys, Demand: d}, forest,
		map[model.NodeID]struct{}{victim: {}})
	repairedStats := repaired.ComputeStats(survivors, sys, nil)

	// Collecting without repair: the victim's subtree is orphaned, so
	// simulate by dropping the victim's subtree from each tree.
	broken := forest.Clone()
	for _, tr := range broken.Trees {
		if tr.Contains(victim) {
			_, _ = tr.RemoveSubtree(victim)
		}
	}
	brokenStats := broken.ComputeStats(survivors, sys, nil)

	if repairedStats.Collected < brokenStats.Collected {
		t.Fatalf("repair lost coverage: %d < %d",
			repairedStats.Collected, brokenStats.Collected)
	}
}
