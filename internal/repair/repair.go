// Package repair implements the management core's failure handling
// (§2.2): when monitoring nodes fail, the affected collection trees are
// reconstructed over the surviving members so monitoring data keeps
// flowing, without disturbing unaffected trees.
package repair

import (
	"sort"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/tree"
)

// Report summarizes a repair.
type Report struct {
	// FailedMembers is how many placed nodes were lost.
	FailedMembers int
	// TreesRebuilt is how many trees contained failed members.
	TreesRebuilt int
	// PairsLost counts pairs observable only at failed nodes (no repair
	// can recover them).
	PairsLost int
	// EdgesChanged is the overlay reconfiguration cost.
	EdgesChanged int
}

// Config carries the planning context for repairs.
type Config struct {
	Sys     *model.System
	Demand  *task.Demand
	Spec    *agg.Spec
	Builder tree.Builder
}

// Repair rebuilds the trees that contain failed nodes, excluding the
// failed nodes, while keeping every unaffected tree (and its capacity
// consumption) fixed. The input forest is not modified.
func Repair(cfg Config, forest *plan.Forest, failed map[model.NodeID]struct{}) (*plan.Forest, Report) {
	if cfg.Builder == nil {
		cfg.Builder = tree.New(tree.Adaptive)
	}
	var rep Report

	// Partition trees into affected and fixed.
	var fixed, affected []*plan.Tree
	for _, t := range forest.Trees {
		hit := false
		for _, n := range t.Members() {
			if _, dead := failed[n]; dead {
				hit = true
				rep.FailedMembers++
			}
		}
		if hit {
			affected = append(affected, t)
		} else {
			fixed = append(fixed, t)
		}
	}
	rep.TreesRebuilt = len(affected)

	// The demand seen by repairs: failed nodes observe nothing anymore.
	d, lost := Prune(cfg.Demand, failed)
	rep.PairsLost = lost

	// Charge fixed trees' usage before allocating to rebuilt ones.
	used := make(map[model.NodeID]float64)
	var centralUsed float64
	out := plan.NewForest()
	for _, t := range fixed {
		st := plan.ComputeTreeStats(t, d, cfg.Sys, cfg.Spec)
		for n, u := range st.Usage {
			used[n] += u
		}
		centralUsed += st.RootSend
		out.Add(t)
	}

	// Rebuild affected trees smallest-first over survivors.
	sort.Slice(affected, func(i, j int) bool {
		return len(d.Participants(affected[i].Attrs)) < len(d.Participants(affected[j].Attrs))
	})
	for _, t := range affected {
		participants := d.Participants(t.Attrs)
		avail := make(map[model.NodeID]float64, len(participants))
		for _, n := range participants {
			rem := cfg.Sys.Capacity(n) - used[n]
			if rem < 0 {
				rem = 0
			}
			avail[n] = rem
		}
		centralAvail := cfg.Sys.CentralCapacity - centralUsed
		if centralAvail < 0 {
			centralAvail = 0
		}
		r := cfg.Builder.Build(tree.Context{
			Sys:          cfg.Sys,
			Demand:       d,
			Spec:         cfg.Spec,
			Attrs:        t.Attrs,
			Nodes:        participants,
			Avail:        avail,
			CentralAvail: centralAvail,
		})
		for n, u := range r.Used {
			used[n] += u
		}
		centralUsed += r.CentralUsed
		if !r.Tree.Empty() {
			out.Add(r.Tree)
		}
	}

	rep.EdgesChanged = plan.DiffEdges(forest, out)
	return out, rep
}

// Prune returns a clone of the demand with every pair observed at a
// failed node removed, plus how many pairs were lost. The input demand
// is not modified.
func Prune(d *task.Demand, failed map[model.NodeID]struct{}) (*task.Demand, int) {
	out := d.Clone()
	lost := 0
	for n := range failed {
		for _, a := range out.AttrsOf(n).Attrs() {
			out.Remove(n, a)
			lost++
		}
	}
	return out, lost
}
