// Package remo is a resource-aware application state monitoring planner
// and emulation toolkit, reproducing "REMO: Resource-Aware Application
// State Monitoring for Large-Scale Distributed Systems" (Meng, Kashyap,
// Venkatramani, Liu — ICDCS 2009; journal version in IEEE TPDS 2012).
//
// Monitoring tasks collect attribute values from sets of nodes. REMO
// organizes the nodes into a forest of collection trees that maximizes
// the number of node-attribute pairs delivered to a central collector
// without exceeding any node's capacity, under the message cost model
// cost(msg) = C + a·x (a fixed per-message overhead plus a per-value
// payload cost).
//
// Typical use:
//
//	sys, _ := remo.NewSystem(remo.SystemSpec{...})
//	p := remo.NewPlanner(sys)
//	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: nodes})
//	plan, _ := p.Plan()
//	fmt.Println(plan.PercentCollected())
//	report, _ := plan.Deploy(remo.DeployConfig{Rounds: 60})
//
// Live sessions started with Planner.StartMonitor are self-healing:
// under fault injection (MonitorConfig.Chaos) or an explicit
// FailurePolicy, a collector-side failure detector declares silent nodes
// dead, the topology is automatically repaired around them, and
// recovered nodes are reintegrated — see Monitor and RepairEvent.
//
// The package is a facade over the internal packages; the experiment
// harness reproducing the paper's figures lives in cmd/remo-bench.
package remo

import (
	"fmt"

	"remo/internal/agg"
	"remo/internal/alloc"
	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/freq"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/predict"
	"remo/internal/reliability"
	"remo/internal/task"
	"remo/internal/tree"
)

// Core identifier and data types, shared with the planner internals.
type (
	// NodeID identifies a node; the central collector is CentralNode.
	NodeID = model.NodeID
	// AttrID identifies an attribute type (e.g. "cpu utilization").
	AttrID = model.AttrID
	// Pair is a node-attribute pair — the planner's unit of coverage.
	Pair = model.Pair
	// Task is a monitoring task t = (A_t, N_t).
	Task = model.Task
	// Node describes a monitoring node: capacity and local attributes.
	Node = model.Node
	// System describes the monitored deployment.
	System = model.System
	// CostModel is the per-message cost model (C and a).
	CostModel = cost.Model
)

// CentralNode is the NodeID of the central data collector.
const CentralNode = model.Central

// Tree construction schemes selectable via WithTreeScheme.
const (
	TreeAdaptive = tree.Adaptive
	TreeStar     = tree.Star
	TreeChain    = tree.Chain
	TreeMaxAvb   = tree.MaxAvb
)

// Capacity allocation schemes selectable via WithAllocScheme.
const (
	AllocOrdered      = alloc.Ordered
	AllocOnDemand     = alloc.OnDemand
	AllocUniform      = alloc.Uniform
	AllocProportional = alloc.Proportional
)

// Aggregation kinds for in-network aggregation.
const (
	AggHolistic = agg.Holistic
	AggSum      = agg.Sum
	AggMax      = agg.Max
	AggMin      = agg.Min
	AggCount    = agg.Count
	AggTopK     = agg.TopK
	AggDistinct = agg.Distinct
)

// SystemSpec declares a monitored system for NewSystem.
type SystemSpec struct {
	// CentralCapacity is the collector's per-round budget.
	CentralCapacity float64 `json:"centralCapacity"`
	// Cost is the message cost model.
	Cost CostModel `json:"cost"`
	// Nodes are the monitoring nodes.
	Nodes []Node `json:"nodes"`
}

// NewSystem validates and builds a System.
func NewSystem(spec SystemSpec) (*System, error) {
	return model.NewSystem(spec.CentralCapacity, spec.Cost, spec.Nodes)
}

// Planner plans monitoring topologies for a task set.
type Planner struct {
	sys     *System
	mgr     *task.Manager
	aggSpec *agg.Spec
	cons    *partition.Constraints
	opts    []core.Option

	// Extension state: replica aliases (SSDP reliability), update
	// frequencies (piggyback weighting) and forecast-driven dead-band
	// suppression.
	aliases   *reliability.AliasMap
	aliasNext AttrID
	freqSpec  *freq.Spec
	predSpec  *predict.Spec

	// baseline, when set, bypasses the search with a fixed partition.
	baseline Baseline

	// runtimeWorkers sizes the emulation round engine's worker pool.
	runtimeWorkers int

	// verifyOn arms the verification harness: planned topologies are
	// cross-checked by the independent invariant checker, and plans,
	// deployments and live monitors expose/enforce Verify.
	verifyOn bool

	// journalDir, when set, makes every StartMonitor session durable by
	// default (see WithJournal / MonitorConfig.Journal).
	journalDir string

	// incReplan selects incremental replanning as the default scheme
	// for Monitor task mutations (on unless WithIncrementalReplan(false)
	// turned it off); replanOpts tune the replanner.
	incReplan  bool
	replanOpts []core.ReplanOption
}

// PlannerOption configures a Planner.
type PlannerOption func(*Planner)

// WithTreeScheme selects the collection tree construction algorithm
// (default TreeAdaptive).
func WithTreeScheme(s tree.Scheme) PlannerOption {
	return func(p *Planner) { p.opts = append(p.opts, core.WithBuilder(tree.New(s))) }
}

// WithAllocScheme selects the tree-wise capacity allocation policy
// (default AllocOrdered).
func WithAllocScheme(s alloc.Scheme) PlannerOption {
	return func(p *Planner) { p.opts = append(p.opts, core.WithAlloc(alloc.New(s))) }
}

// WithAggregation declares in-network aggregation for an attribute: the
// planner exploits the payload reduction and the emulation aggregates at
// every hop. k is the bound for AggTopK and ignored otherwise.
func WithAggregation(a AttrID, kind agg.Kind, k int) PlannerOption {
	return func(p *Planner) {
		if kind == agg.TopK {
			p.aggSpec.SetTopK(a, k)
			return
		}
		p.aggSpec.SetKind(a, kind)
	}
}

// WithEvalBudget bounds how many candidate partitions the guided search
// evaluates per iteration (0 = the whole neighborhood).
func WithEvalBudget(k int) PlannerOption {
	return func(p *Planner) { p.opts = append(p.opts, core.WithEvalBudget(k)) }
}

// WithPlannerWorkers pins the planner's evaluation worker count: 0 (the
// default) sizes the pool to GOMAXPROCS, 1 forces the fully sequential
// search. The planned topology is identical at any setting — workers
// change wall-clock only — so this knob exists for benchmarking and for
// capping planner CPU next to latency-sensitive workloads.
func WithPlannerWorkers(n int) PlannerOption {
	return func(p *Planner) { p.opts = append(p.opts, core.WithWorkers(n)) }
}

// WithRuntimeWorkers sizes the emulation round engine's worker pool,
// used by Plan.Deploy and live monitors: 0 (the default) sizes the pool
// to GOMAXPROCS, positive values are used as given, and -1 selects the
// legacy goroutine-per-node engine. Results are identical at any
// setting — workers change wall-clock only.
func WithRuntimeWorkers(n int) PlannerOption {
	return func(p *Planner) { p.runtimeWorkers = n }
}

// WithVerification arms the verification harness for everything the
// planner produces: Plan cross-checks each planned topology against an
// independent invariant checker (structure, ownership, capacity, and a
// from-scratch recount of the claimed statistics), Plan.Deploy
// cross-checks the emulation's reported results, and live Monitors
// verify every repaired topology they hot-swap in. Verification
// failures surface as errors rather than silently wrong numbers; the
// cost is one extra forest traversal per plan or deploy.
func WithVerification() PlannerOption {
	return func(p *Planner) { p.verifyOn = true }
}

// WithJournal makes every monitoring session this planner starts
// durable: collector-side state (installed plan epoch and fingerprint,
// demand, detector verdicts, repair history, collected samples) is
// checkpointed and write-ahead logged under dir, epoch fencing is
// armed, and leaves buffer their outgoing values across collector
// outages. A crashed session resumes via Monitor.Resume (in-process)
// or Planner.ResumeMonitor (cold start). MonitorConfig.Journal
// overrides the directory per session.
func WithJournal(dir string) PlannerOption {
	return func(p *Planner) { p.journalDir = dir }
}

// WithIncrementalReplan controls whether Monitor task mutations replan
// incrementally (the default): the guided search is seeded from the
// live partition and scoped to the attribute sets the mutation touches,
// reusing untouched trees byte-for-byte, and falls back to the full
// search when the scoped result regresses. Pass false to restore the
// paper's ADAPTIVE scheme as the default for sessions that do not name
// a scheme explicitly; MonitorConfig.Scheme always wins.
func WithIncrementalReplan(enabled bool) PlannerOption {
	return func(p *Planner) { p.incReplan = enabled }
}

// WithReplanFallback tunes incremental replanning's fallback condition:
// a scoped replan whose coverage fraction drops more than tol below
// what the previous plan still collects under the mutated demand is
// discarded for a full replan. The default tolerance 0.01 absorbs the
// capacity allocator's reordering noise; pass 0 to fall back on any
// coverage regression.
func WithReplanFallback(tol float64) PlannerOption {
	return func(p *Planner) { p.replanOpts = append(p.replanOpts, core.WithReplanFallback(tol)) }
}

// Forecasting model kinds for WithPrediction / SetPredictionModel.
const (
	// PredictEWMA forecasts with an exponentially weighted moving
	// average — level only, robust on noisy series.
	PredictEWMA = predict.EWMA
	// PredictHolt forecasts with Holt's linear-trend double smoothing —
	// tracks drifting plateaus, the default.
	PredictHolt = predict.Holt
)

// WithPrediction arms forecast-driven dead-band traffic suppression
// with the given default relative error bound (e.g. 0.01 = 1%): every
// leaf and the collector run bit-identical per-pair forecasting
// replicas, a leaf whose observed value is within ε of the shared
// prediction sends a compact suppression marker instead of the value,
// and the collector imputes the predicted value — guaranteed within
// the band of the truth, since the leaf checked exactly that before
// suppressing. Markers cost no capacity; only holistic, non-aliased
// attributes are eligible. Panics on a non-positive or non-finite
// bound (program-initialization style, like MustAddTask); per-attribute
// overrides go through SetPredictionBound and SetPredictionModel.
func WithPrediction(eps float64) PlannerOption {
	return func(p *Planner) {
		s, err := predict.NewSpec(eps)
		if err != nil {
			panic(fmt.Sprintf("remo: %v", err))
		}
		p.predSpec = s
	}
}

// Baseline selects a fixed partition scheme instead of REMO's search,
// for comparisons like the paper's Figs. 5-8.
type Baseline int

// Baseline partition schemes.
const (
	// BaselineNone runs the full REMO search (default).
	BaselineNone Baseline = iota
	// BaselineSingletonSet builds one tree per attribute (PIER-style).
	BaselineSingletonSet
	// BaselineOneSet builds a single tree delivering every attribute.
	BaselineOneSet
)

// WithBaseline makes Plan evaluate the given fixed partition scheme
// instead of searching.
func WithBaseline(b Baseline) PlannerOption {
	return func(p *Planner) { p.baseline = b }
}

// NewPlanner returns a planner for the system.
func NewPlanner(sys *System, opts ...PlannerOption) *Planner {
	p := &Planner{
		sys:       sys,
		aggSpec:   agg.NewSpec(),
		incReplan: true,
	}
	p.mgr = task.NewManager(task.WithSystem(sys), task.WithAliasResolver(p.resolveAttr))
	for _, o := range opts {
		o(p)
	}
	return p
}

// AddTask registers a monitoring task. Task names must be unique;
// node-attribute pairs duplicated across tasks are collected once.
func (p *Planner) AddTask(t Task) error {
	return p.mgr.Add(t)
}

// MustAddTask is AddTask for program initialization, panicking on
// invalid tasks.
func (p *Planner) MustAddTask(t Task) {
	if err := p.mgr.Add(t); err != nil {
		panic(fmt.Sprintf("remo: %v", err))
	}
}

// UpdateTask replaces a registered task.
func (p *Planner) UpdateTask(t Task) error {
	return p.mgr.Update(t)
}

// RemoveTask deletes a registered task by name.
func (p *Planner) RemoveTask(name string) error {
	return p.mgr.Remove(name)
}

// Tasks returns the registered tasks ordered by name.
func (p *Planner) Tasks() []Task { return p.mgr.Tasks() }

// System returns the planner's system.
func (p *Planner) System() *System { return p.sys }

// DedupStats reports raw vs distinct node-attribute pairs across the
// registered tasks (the task manager's duplicate elimination).
func (p *Planner) DedupStats() (raw, distinct int) { return p.mgr.DedupStats() }

// Plan runs the REMO planning algorithm over the registered tasks,
// applying any declared update frequencies (piggyback weights) and
// reliability constraints.
func (p *Planner) Plan() (*Plan, error) {
	d := p.mgr.Demand()
	if p.freqSpec != nil {
		d = p.freqSpec.Apply(d)
	}
	// Prediction discounts are planner-side only: the search packs
	// against rate-scaled weights (identity until transmit rates are
	// recorded via SetPredictionRate or ObserveRate feedback), while the
	// runtime demand keeps full weights — suppression elides values
	// inside a round, it never stretches reporting periods.
	dPlan := d
	if p.predSpec != nil {
		dPlan = p.predSpec.Apply(d)
	}
	planner := p.corePlanner()
	var res core.Result
	switch p.baseline {
	case BaselineSingletonSet:
		res = planner.PlanPartition(p.sys, dPlan, partition.Singleton(dPlan.Universe()))
	case BaselineOneSet:
		res = planner.PlanPartition(p.sys, dPlan, partition.OneSet(dPlan.Universe()))
	default:
		res = planner.Plan(p.sys, dPlan)
	}
	pl := &Plan{
		sys:            p.sys,
		demand:         d,
		planDemand:     dPlan,
		predSpec:       p.predSpec,
		aggSpec:        p.aggSpec,
		resolve:        p.resolveAttr,
		res:            res,
		runtimeWorkers: p.runtimeWorkers,
		verifyOn:       p.verifyOn,
	}
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("remo: planned topology failed validation: %w", err)
	}
	if p.verifyOn {
		if err := pl.Verify(); err != nil {
			return nil, fmt.Errorf("remo: planned topology failed verification: %w", err)
		}
	}
	return pl, nil
}

// corePlanner builds the internal planner with this facade's options
// (shared with the adaptation wrapper).
func (p *Planner) corePlanner() *core.Planner {
	opts := append([]core.Option{core.WithSpec(p.aggSpec)}, p.opts...)
	cons := p.cons
	if p.freqSpec != nil {
		if fc := p.freqSpec.Constraints(p.mgr.Demand()); fc != nil {
			merged := partition.NewConstraints()
			merged.Merge(cons)
			merged.Merge(fc)
			cons = merged
		}
	}
	if cons != nil {
		opts = append(opts, core.WithConstraints(cons))
	}
	return core.NewPlanner(opts...)
}
