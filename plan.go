package remo

import (
	"fmt"
	"io"
	"sort"

	"remo/internal/agg"
	"remo/internal/core"
	"remo/internal/plan"
	"remo/internal/predict"
	"remo/internal/task"
	"remo/internal/verify"
)

// Plan is a finished monitoring topology: a forest of collection trees
// plus its evaluated resource profile.
type Plan struct {
	sys    *System
	demand *task.Demand
	// planDemand is the demand the search packed against — equal to
	// demand unless prediction transmit rates discounted it. Validation
	// and verification run against it (it justified the packing); the
	// runtime installs demand, whose weights drive piggyback periods.
	planDemand *task.Demand
	// predSpec arms dead-band suppression in Deploy (nil = off).
	predSpec *predict.Spec
	aggSpec  *agg.Spec
	resolve  func(AttrID) AttrID
	res      core.Result
	// runtimeWorkers sizes Deploy's round engine pool (see
	// WithRuntimeWorkers).
	runtimeWorkers int
	// verifyOn carries the planner's WithVerification setting into
	// Deploy, which then cross-checks emulation results.
	verifyOn bool
}

// planFromForest wraps an externally maintained forest (the adaptor's)
// in a Plan.
func planFromForest(p *Planner, forest *plan.Forest, d *task.Demand) *Plan {
	return &Plan{
		sys:            p.sys,
		demand:         d,
		predSpec:       p.predSpec,
		aggSpec:        p.aggSpec,
		resolve:        p.resolveAttr,
		runtimeWorkers: p.runtimeWorkers,
		res: core.Result{
			Forest:    forest,
			Stats:     forest.ComputeStats(d, p.sys, p.aggSpec),
			Partition: forest.Partition(),
		},
	}
}

// TreeInfo summarizes one collection tree for display.
type TreeInfo struct {
	// Attrs are the attributes the tree delivers.
	Attrs []AttrID
	// Root is the tree's root (the collector's direct child).
	Root NodeID
	// Size is the number of member nodes.
	Size int
	// Height is the tree's maximum depth.
	Height int
}

// Trees describes the plan's collection trees, largest first.
func (p *Plan) Trees() []TreeInfo {
	out := make([]TreeInfo, 0, len(p.res.Forest.Trees))
	for _, t := range p.res.Forest.Trees {
		out = append(out, TreeInfo{
			Attrs:  t.Attrs.Attrs(),
			Root:   t.Root(),
			Size:   t.Size(),
			Height: t.Height(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return fmt.Sprint(out[i].Attrs) < fmt.Sprint(out[j].Attrs)
	})
	return out
}

// DemandedPairs is the number of distinct node-attribute pairs the task
// set requires.
func (p *Plan) DemandedPairs() int { return p.demand.PairCount() }

// CollectedPairs is the number of pairs the topology delivers to the
// collector.
func (p *Plan) CollectedPairs() int { return p.res.Stats.Collected }

// PercentCollected is the plan's coverage in percent.
func (p *Plan) PercentCollected() float64 {
	if p.demand.PairCount() == 0 {
		return 0
	}
	return 100 * float64(p.res.Stats.Collected) / float64(p.demand.PairCount())
}

// MissedPairs lists the demanded pairs the topology cannot deliver
// within the capacity constraints.
func (p *Plan) MissedPairs() []Pair { return p.res.Forest.MissedPairs(p.demand) }

// TotalCost is the plan's total capacity consumption per collection
// round.
func (p *Plan) TotalCost() float64 { return p.res.Stats.TotalCost }

// NodeUsage returns every placed node's capacity usage per round.
func (p *Plan) NodeUsage() map[NodeID]float64 {
	out := make(map[NodeID]float64, len(p.res.Stats.Usage))
	for n, u := range p.res.Stats.Usage {
		out[n] = u
	}
	return out
}

// CentralUsage is the collector's receive cost per round.
func (p *Plan) CentralUsage() float64 { return p.res.Stats.CentralUsage }

// ParentOf returns the parent of node n in the tree delivering attribute
// a (CentralNode for roots); ok is false when the pair is not collected.
func (p *Plan) ParentOf(n NodeID, a AttrID) (parent NodeID, ok bool) {
	t := p.res.Forest.TreeFor(a)
	if t == nil {
		return 0, false
	}
	return t.Parent(n)
}

// Validate re-checks the plan against the system and demand.
func (p *Plan) Validate() error {
	return p.res.Forest.Validate(p.packedDemand(), p.sys, p.aggSpec)
}

// packedDemand is the demand the plan's packing was justified under.
func (p *Plan) packedDemand() *task.Demand {
	if p.planDemand != nil {
		return p.planDemand
	}
	return p.demand
}

// Verify runs the independent verification harness over the plan:
// structural validity (a forest of well-formed trees partitioning the
// demanded attributes), ownership (nodes only carry attributes they
// observe), capacity feasibility under the C + a·x cost model, and a
// from-scratch recount of the plan's claimed statistics. Unlike
// Validate, none of the checks reuse the planner's own accounting.
func (p *Plan) Verify() error {
	return verify.Claims(p.verifyContext(), p.res.Forest, p.res.Stats)
}

// verifyContext assembles the plan's verification inputs.
func (p *Plan) verifyContext() verify.Context {
	return verify.Context{
		Sys:     p.sys,
		Demand:  p.packedDemand(),
		Spec:    p.aggSpec,
		Resolve: p.resolve,
	}
}

// Describe writes a human-readable summary of the plan.
func (p *Plan) Describe(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"plan: %d trees, %d/%d pairs collected (%.1f%%), total cost %.1f/round, collector load %.1f/%.1f\n",
		len(p.res.Forest.Trees), p.CollectedPairs(), p.DemandedPairs(),
		p.PercentCollected(), p.TotalCost(), p.CentralUsage(), p.sys.CentralCapacity,
	); err != nil {
		return err
	}
	for i, info := range p.Trees() {
		if _, err := fmt.Fprintf(w, "  tree %d: %d nodes, height %d, root %v, attrs %v\n",
			i, info.Size, info.Height, info.Root, attrsPreview(info.Attrs)); err != nil {
			return err
		}
	}
	return nil
}

// attrsPreview keeps tree summaries short for wide attribute sets.
func attrsPreview(attrs []AttrID) string {
	const maxShown = 8
	if len(attrs) <= maxShown {
		return fmt.Sprint(attrs)
	}
	return fmt.Sprintf("%v… (%d attrs)", attrs[:maxShown], len(attrs))
}

// forest exposes the internal forest to the deploy wrapper.
func (p *Plan) forest() *plan.Forest { return p.res.Forest }

// internalDemand exposes the demand to the deploy wrapper.
func (p *Plan) internalDemand() *task.Demand { return p.demand }
