package remo_test

import (
	"reflect"
	"strings"
	"testing"

	"remo"
)

// testSystem builds a 12-node system where every node observes attrs
// 1..4.
func testSystem(t *testing.T) *remo.System {
	t.Helper()
	nodes := make([]remo.Node, 12)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 120,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 600,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func allNodes(sys *remo.System) []remo.NodeID { return sys.NodeIDs() }

func TestPlanAndDescribe(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: allNodes(sys)})

	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.DemandedPairs() != 24 {
		t.Fatalf("demanded = %d, want 24", plan.DemandedPairs())
	}
	if plan.PercentCollected() < 99 {
		t.Fatalf("collected %.1f%%, want ~100%%", plan.PercentCollected())
	}
	if len(plan.MissedPairs()) != 0 {
		t.Fatalf("missed = %v", plan.MissedPairs())
	}
	var sb strings.Builder
	if err := plan.Describe(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pairs collected") {
		t.Fatalf("Describe output: %s", sb.String())
	}
	if _, ok := plan.ParentOf(allNodes(sys)[0], 1); !ok {
		t.Fatal("ParentOf failed for a collected pair")
	}
}

func TestDedupAcrossTasks(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	nodes := allNodes(sys)
	p.MustAddTask(remo.Task{Name: "a", Attrs: []remo.AttrID{1}, Nodes: nodes[:8]})
	p.MustAddTask(remo.Task{Name: "b", Attrs: []remo.AttrID{1}, Nodes: nodes[4:]})
	raw, distinct := p.DedupStats()
	if raw != 16 || distinct != 12 {
		t.Fatalf("dedup = (%d, %d), want (16, 12)", raw, distinct)
	}
}

func TestTaskLifecycle(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	task := remo.Task{Name: "t", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)[:3]}
	if err := p.AddTask(task); err != nil {
		t.Fatal(err)
	}
	task.Attrs = []remo.AttrID{1, 2}
	if err := p.UpdateTask(task); err != nil {
		t.Fatal(err)
	}
	if got := p.Tasks(); len(got) != 1 || len(got[0].Attrs) != 2 {
		t.Fatalf("Tasks = %+v", got)
	}
	if err := p.RemoveTask("t"); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks()) != 0 {
		t.Fatal("task not removed")
	}
}

func TestDeploy(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2, 3}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredPairs != rep.DemandedPairs {
		t.Fatalf("covered %d of %d", rep.CoveredPairs, rep.DemandedPairs)
	}
	if rep.AvgPercentError <= 0 || rep.AvgPercentError > 60 {
		t.Fatalf("error = %.2f%%", rep.AvgPercentError)
	}
	if rep.MessagesSent == 0 {
		t.Fatal("no traffic")
	}
}

func TestDeployRuntimeWorkersEquivalent(t *testing.T) {
	deploy := func(workers int) remo.DeployReport {
		sys := testSystem(t)
		p := remo.NewPlanner(sys, remo.WithRuntimeWorkers(workers))
		p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2, 3}, Nodes: allNodes(sys)})
		plan, err := p.Plan()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := plan.Deploy(remo.DeployConfig{Rounds: 20, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := deploy(-1) // legacy goroutine-per-node engine
	for _, workers := range []int{0, 2} {
		got := deploy(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("WithRuntimeWorkers(%d) changed the report:\ngot  %+v\nwant %+v",
				workers, got, want)
		}
	}
}

func TestDeployCustomSourceAndFailure(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	constant := remo.ValueFunc(func(remo.NodeID, remo.AttrID, int) float64 { return 42 })
	clean, err := plan.Deploy(remo.DeployConfig{Rounds: 15, Source: constant})
	if err != nil {
		t.Fatal(err)
	}
	// A constant signal has zero staleness error once delivered.
	if clean.AvgPercentError > 20 {
		t.Fatalf("constant-source error = %.2f%%", clean.AvgPercentError)
	}
	failed, err := plan.Deploy(remo.DeployConfig{
		Rounds: 15, Source: constant,
		FailAt: map[remo.NodeID]int{plan.Trees()[0].Root: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed.ValuesDelivered >= clean.ValuesDelivered {
		t.Fatal("root failure did not reduce deliveries")
	}
}

func TestAggregationOption(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys, remo.WithAggregation(1, remo.AggMax, 0))
	p.MustAddTask(remo.Task{Name: "max", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	// MAX aggregation collapses the whole tree to one logical target.
	if rep.DemandedPairs != 1 {
		t.Fatalf("aggregated demanded = %d, want 1", rep.DemandedPairs)
	}
}

func TestReliableTask(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	if err := p.AddReliableTask(remo.Task{
		Name: "critical", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)[:6],
	}, 2); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Replica values travel distinct trees.
	trees := plan.Trees()
	if len(trees) < 2 {
		t.Fatalf("trees = %d, want >= 2 for replication", len(trees))
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Aliases fold: 6 demanded pairs despite 12 planned deliveries.
	if rep.DemandedPairs != 6 {
		t.Fatalf("demanded = %d, want 6", rep.DemandedPairs)
	}
	if rep.CoveredPairs != 6 {
		t.Fatalf("covered = %d", rep.CoveredPairs)
	}
}

func TestFrequencyOption(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "mixed", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(sys)})
	if err := p.SetFrequency(2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := p.SetFrequency(2, -1); err == nil {
		t.Fatal("negative frequency accepted")
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredPairs != rep.DemandedPairs {
		t.Fatalf("covered %d of %d", rep.CoveredPairs, rep.DemandedPairs)
	}
}

func TestAdaptorFlow(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	ad := remo.NewAdaptor(p, remo.AdaptAdaptive)

	tasks := []remo.Task{{Name: "t1", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)}}
	rep, err := ad.SetTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CollectedPairs == 0 {
		t.Fatal("initial plan collected nothing")
	}
	tasks = append(tasks, remo.Task{Name: "t2", Attrs: []remo.AttrID{2}, Nodes: allNodes(sys)[:6]})
	rep2, err := ad.SetTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CollectedPairs <= rep.CollectedPairs {
		t.Fatalf("adapted coverage %d <= initial %d", rep2.CollectedPairs, rep.CollectedPairs)
	}
	if err := ad.Plan().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	const doc = `{
		"centralCapacity": 500,
		"perMessage": 10,
		"perValue": 1,
		"nodes": [
			{"id": 1, "capacity": 100},
			{"id": 2, "capacity": 100, "attrs": [1]}
		],
		"tasks": [
			{"name": "t", "attrs": [1, 2], "nodes": [1, 2]}
		]
	}`
	spec, err := remo.LoadSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 only observes attr 1, so 3 pairs are demanded.
	if plan.DemandedPairs() != 3 {
		t.Fatalf("demanded = %d, want 3", plan.DemandedPairs())
	}
	if _, err := remo.LoadSpec(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestPlannerSchemeOptions(t *testing.T) {
	sys := testSystem(t)
	for _, scheme := range []struct {
		name string
		opt  remo.PlannerOption
	}{
		{"star", remo.WithTreeScheme(remo.TreeStar)},
		{"chain", remo.WithTreeScheme(remo.TreeChain)},
		{"uniform", remo.WithAllocScheme(remo.AllocUniform)},
		{"budget", remo.WithEvalBudget(4)},
	} {
		p := remo.NewPlanner(sys, scheme.opt)
		p.MustAddTask(remo.Task{Name: "t", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
		if _, err := p.Plan(); err != nil {
			t.Errorf("%s: %v", scheme.name, err)
		}
	}
}

func TestDescribeWideAttributeSets(t *testing.T) {
	sys := testSystem(t)
	// 12 attrs on one tree exercises the preview truncation.
	nodes := make([]remo.Node, 6)
	attrs := make([]remo.AttrID, 12)
	for i := range attrs {
		attrs[i] = remo.AttrID(i + 1)
	}
	for i := range nodes {
		nodes[i] = remo.Node{ID: remo.NodeID(i + 1), Capacity: 1e6, Attrs: attrs}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 1e6,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "wide", Attrs: attrs, Nodes: sys.NodeIDs()})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := plan.Describe(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "attrs)") { // "… (12 attrs)"
		t.Fatalf("wide attr preview missing:\n%s", sb.String())
	}
}

func TestNodeUsageIsACopy(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "t", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	u1 := plan.NodeUsage()
	for k := range u1 {
		u1[k] = -1
	}
	u2 := plan.NodeUsage()
	for _, v := range u2 {
		if v < 0 {
			t.Fatal("NodeUsage shares internal state")
		}
	}
}

func TestPlannerWorkersOption(t *testing.T) {
	sys := testSystem(t)
	plans := make([]*remo.Plan, 0, 3)
	for _, workers := range []int{0, 1, 4} {
		p := remo.NewPlanner(sys, remo.WithPlannerWorkers(workers))
		p.MustAddTask(remo.Task{Name: "t", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(sys)})
		pl, err := p.Plan()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		plans = append(plans, pl)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].PercentCollected() != plans[0].PercentCollected() {
			t.Fatalf("worker counts disagree: %v vs %v",
				plans[i].PercentCollected(), plans[0].PercentCollected())
		}
	}
}
