module remo

go 1.22
