package remo

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec is the JSON description of a planning problem, consumed by
// cmd/remo-plan and usable programmatically via LoadSpec/Build.
type Spec struct {
	// CentralCapacity is the collector's per-round budget.
	CentralCapacity float64 `json:"centralCapacity"`
	// PerMessage and PerValue are the cost model parameters C and a.
	PerMessage float64 `json:"perMessage"`
	PerValue   float64 `json:"perValue"`
	// Nodes are the monitoring nodes.
	Nodes []NodeSpec `json:"nodes"`
	// Tasks are the monitoring tasks.
	Tasks []TaskSpec `json:"tasks"`
	// CentralRegion is the region hosting the central collector
	// (default: the empty default region).
	CentralRegion string `json:"centralRegion,omitempty"`
	// InterRegionCost, when positive, applies WAN topology pricing:
	// edges between nodes with distinct Region labels cost this multiple
	// of the endpoint cost (intra-region edges stay at 1). Per-pair
	// overrides go through RegionLinks.
	InterRegionCost float64 `json:"interRegionCost,omitempty"`
	// RegionLinks overrides the inter-region multiplier for specific
	// region pairs (undirected).
	RegionLinks []RegionLinkSpec `json:"regionLinks,omitempty"`
}

// RegionLinkSpec prices one undirected inter-region link.
type RegionLinkSpec struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Cost float64 `json:"cost"`
}

// NodeSpec declares one monitoring node.
type NodeSpec struct {
	ID       int     `json:"id"`
	Capacity float64 `json:"capacity"`
	// Attrs lists locally observable attribute ids; empty means "all
	// attributes referenced by tasks".
	Attrs []int `json:"attrs,omitempty"`
	// Region labels the node's WAN region for topology pricing and
	// region-scoped chaos (empty = default region).
	Region string `json:"region,omitempty"`
}

// TaskSpec declares one monitoring task.
type TaskSpec struct {
	Name  string `json:"name"`
	Attrs []int  `json:"attrs"`
	Nodes []int  `json:"nodes"`
	// Replicas > 1 requests SSDP reliable delivery with that many
	// copies.
	Replicas int `json:"replicas,omitempty"`
}

// LoadSpec decodes a JSON spec.
func LoadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("remo: decode spec: %w", err)
	}
	return s, nil
}

// Build validates the spec and assembles a planner with its tasks
// registered.
func (s Spec) Build(opts ...PlannerOption) (*Planner, error) {
	// Nodes without explicit attribute lists observe every attribute any
	// task references.
	attrUniverse := make(map[AttrID]struct{})
	for _, t := range s.Tasks {
		for _, a := range t.Attrs {
			attrUniverse[AttrID(a)] = struct{}{}
		}
	}
	allAttrs := make([]AttrID, 0, len(attrUniverse))
	for a := range attrUniverse {
		allAttrs = append(allAttrs, a)
	}

	nodes := make([]Node, 0, len(s.Nodes))
	for _, ns := range s.Nodes {
		n := Node{ID: NodeID(ns.ID), Capacity: ns.Capacity, Region: ns.Region}
		if len(ns.Attrs) > 0 {
			for _, a := range ns.Attrs {
				n.Attrs = append(n.Attrs, AttrID(a))
			}
		} else {
			n.Attrs = append([]AttrID(nil), allAttrs...)
		}
		nodes = append(nodes, n)
	}

	sys, err := NewSystem(SystemSpec{
		CentralCapacity: s.CentralCapacity,
		Cost:            CostModel{PerMessage: s.PerMessage, PerValue: s.PerValue},
		Nodes:           nodes,
	})
	if err != nil {
		return nil, fmt.Errorf("remo: spec system: %w", err)
	}
	sys.CentralRegion = s.CentralRegion
	if s.InterRegionCost > 0 || len(s.RegionLinks) > 0 {
		topo := NewTopology(1, s.InterRegionCost)
		for _, l := range s.RegionLinks {
			topo.SetLink(l.A, l.B, l.Cost)
		}
		sys.ApplyTopology(topo)
	}

	p := NewPlanner(sys, opts...)
	for _, ts := range s.Tasks {
		t := Task{Name: ts.Name}
		for _, a := range ts.Attrs {
			t.Attrs = append(t.Attrs, AttrID(a))
		}
		for _, n := range ts.Nodes {
			t.Nodes = append(t.Nodes, NodeID(n))
		}
		if ts.Replicas > 1 {
			err = p.AddReliableTask(t, ts.Replicas)
		} else {
			err = p.AddTask(t)
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}
