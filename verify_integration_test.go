package remo_test

import (
	"math/rand"
	"testing"

	"remo"
)

// genPlanner builds a seeded random planner: a system with a
// seed-derived size and capacity spread, and a handful of tasks over
// random node subsets.
func genPlanner(t *testing.T, seed int64) (*remo.Planner, []remo.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nNodes := 12 + rng.Intn(24)
	nAttrs := 2 + rng.Intn(5)
	attrs := make([]remo.AttrID, nAttrs)
	for i := range attrs {
		attrs[i] = remo.AttrID(i + 1)
	}
	nodes := make([]remo.Node, nNodes)
	ids := make([]remo.NodeID, nNodes)
	for i := range nodes {
		ids[i] = remo.NodeID(i + 1)
		nodes[i] = remo.Node{
			ID:       ids[i],
			Capacity: 120 + 280*rng.Float64(),
			Attrs:    attrs,
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: float64(nNodes) * 20,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := remo.NewPlanner(sys, remo.WithVerification())
	nTasks := 2 + rng.Intn(4)
	names := []string{"cpu", "mem", "disk", "net", "req", "err"}
	for i := 0; i < nTasks; i++ {
		subset := append([]remo.NodeID(nil), ids...)
		rng.Shuffle(len(subset), func(a, b int) { subset[a], subset[b] = subset[b], subset[a] })
		subset = subset[:1+rng.Intn(len(subset))]
		taskAttrs := append([]remo.AttrID(nil), attrs...)
		rng.Shuffle(len(taskAttrs), func(a, b int) { taskAttrs[a], taskAttrs[b] = taskAttrs[b], taskAttrs[a] })
		taskAttrs = taskAttrs[:1+rng.Intn(len(taskAttrs))]
		p.MustAddTask(remo.Task{Name: names[i], Attrs: taskAttrs, Nodes: subset})
	}
	return p, ids
}

// TestVerifiedChaosMonitorSessions drives generated workloads through
// full self-healing Monitor sessions — crashes, recoveries, message
// loss and delay — with the verification harness armed: every planned
// topology, every repaired hot-swap, and the final live results are
// cross-checked by the independent invariant checker.
func TestVerifiedChaosMonitorSessions(t *testing.T) {
	const sessions = 12
	repaired := 0
	for seed := int64(7000); seed < 7000+sessions; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0xbeef))
		p, ids := genPlanner(t, seed)

		// Sanity: the planner-side verification also passes standalone.
		pl, err := p.Plan()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := pl.Verify(); err != nil {
			t.Fatalf("seed %d: plan verification: %v", seed, err)
		}

		rounds := 24 + rng.Intn(16)
		cc := &remo.ChaosConfig{
			DropProb:  rng.Float64() * 0.15,
			DelayProb: rng.Float64() * 0.15,
			Seed:      uint64(seed),
			CrashAt:   map[remo.NodeID]int{},
			RecoverAt: map[remo.NodeID]int{},
		}
		// Crash 1-3 nodes mid-run; recover some so reintegration rewires
		// get verified too.
		shuffled := append([]remo.NodeID(nil), ids...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		for i := 0; i < 1+rng.Intn(3) && i < len(shuffled); i++ {
			at := 4 + rng.Intn(rounds/2)
			cc.CrashAt[shuffled[i]] = at
			if rng.Intn(2) == 0 {
				cc.RecoverAt[shuffled[i]] = at + 6 + rng.Intn(6)
			}
		}

		mon, err := p.StartMonitor(remo.MonitorConfig{
			Seed:    uint64(seed),
			Chaos:   cc,
			Failure: &remo.FailurePolicy{SuspicionRounds: 2},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := mon.Run(rounds); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		rep := mon.Report()
		if err := mon.Verify(); err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
		if len(rep.Repairs) > 0 {
			repaired++
		}
		if err := mon.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
	// The point of the chaos sessions is verifying repaired hot-swaps;
	// if the schedules stop triggering repairs, the test is vacuous.
	if repaired < sessions/2 {
		t.Fatalf("only %d/%d sessions exercised a repair rewire", repaired, sessions)
	}
}

// TestVerifiedDeploy checks the Deploy-side result verification with
// the harness armed, with and without chaos.
func TestVerifiedDeploy(t *testing.T) {
	p, _ := genPlanner(t, 7777)
	pl, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Deploy(remo.DeployConfig{Rounds: 10, Seed: 1}); err != nil {
		t.Fatalf("clean deploy failed verification: %v", err)
	}
	if _, err := pl.Deploy(remo.DeployConfig{
		Rounds: 10, Seed: 2,
		Chaos: &remo.ChaosConfig{DropProb: 0.2, DelayProb: 0.1, Seed: 3},
	}); err != nil {
		t.Fatalf("chaos deploy failed verification: %v", err)
	}
}
