package remo

import (
	"errors"
	"fmt"

	"remo/internal/adapt"
	"remo/internal/cluster"
	"remo/internal/task"
	"remo/internal/transport"
)

// Monitor is a live monitoring session: an emulated deployment that
// keeps collecting while the task set changes underneath it. Task
// updates go through the runtime adaptation planner (§4) and the
// resulting topology is swapped into the running overlay — values keep
// flowing, stale views persist across the swap, and the adaptation cost
// is reported per change.
//
// Typical use:
//
//	mon, _ := p.StartMonitor(remo.MonitorConfig{Scheme: remo.AdaptAdaptive})
//	defer mon.Close()
//	mon.Run(20)                       // 20 collection rounds
//	mon.SetTasks(newTasks)            // adapt the topology in place
//	mon.Run(20)
//	fmt.Println(mon.Report().AvgPercentError)
type Monitor struct {
	planner *Planner
	adaptor *adapt.Adaptor
	machine *cluster.Machine
	closed  bool
}

// MonitorConfig parameterizes a live session.
type MonitorConfig struct {
	// Scheme selects the adaptation policy (default AdaptAdaptive).
	Scheme AdaptScheme
	// Source overrides the ground-truth value generator.
	Source ValueSource
	// UseTCP runs the overlay over loopback TCP.
	UseTCP bool
	// Seed decorrelates the default value generator.
	Seed uint64
	// OnValue receives every collected value (see DeployConfig.OnValue).
	OnValue func(pair Pair, round int, value float64)
	// Trace records structured emulation events.
	Trace *TraceRecorder
}

// ErrMonitorClosed is returned by operations on a closed Monitor.
var ErrMonitorClosed = errors.New("remo: monitor closed")

// StartMonitor plans the current task set and boots the live session.
func (p *Planner) StartMonitor(cfg MonitorConfig) (*Monitor, error) {
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = AdaptAdaptive
	}
	ad := adapt.New(scheme, p.corePlanner(), p.sys)
	ad.Init(p.currentDemand())

	var source ValueSource = cfg.Source
	if source == nil {
		source = cluster.BurstyWalk{Seed: cfg.Seed}
	}
	ccfg := cluster.Config{
		Sys:             p.sys,
		Forest:          ad.Forest(),
		Demand:          ad.Demand(),
		Spec:            p.aggSpec,
		Source:          source,
		Resolve:         p.resolveAttr,
		EnforceCapacity: true,
		Observer:        cfg.OnValue,
		Trace:           cfg.Trace,
	}
	if cfg.UseTCP {
		tr, err := transport.NewTCP(p.sys.NodeIDs())
		if err != nil {
			return nil, fmt.Errorf("remo: start TCP transport: %w", err)
		}
		ccfg.Transport = tr
	}
	machine, err := cluster.NewMachine(ccfg)
	if err != nil {
		return nil, fmt.Errorf("remo: start monitor: %w", err)
	}
	return &Monitor{planner: p, adaptor: ad, machine: machine}, nil
}

// currentDemand computes the planner's demand including frequency
// weighting.
func (p *Planner) currentDemand() *task.Demand {
	d := p.mgr.Demand()
	if p.freqSpec != nil {
		d = p.freqSpec.Apply(d)
	}
	return d
}

// Run executes n collection rounds.
func (m *Monitor) Run(n int) error {
	if m.closed {
		return ErrMonitorClosed
	}
	return m.machine.StepN(n)
}

// Round returns the next round to execute.
func (m *Monitor) Round() int { return m.machine.Round() }

// SetTasks replaces the task set, adapts the topology per the session's
// scheme, and rewires the running overlay.
func (m *Monitor) SetTasks(tasks []Task) (AdaptReport, error) {
	if m.closed {
		return AdaptReport{}, ErrMonitorClosed
	}
	mgr := task.NewManager(
		task.WithSystem(m.planner.sys),
		task.WithAliasResolver(m.planner.resolveAttr),
	)
	for _, t := range tasks {
		if err := mgr.Add(t); err != nil {
			return AdaptReport{}, fmt.Errorf("remo: %w", err)
		}
	}
	d := mgr.Demand()
	if m.planner.freqSpec != nil {
		d = m.planner.freqSpec.Apply(d)
	}
	rep := m.adaptor.Apply(d)
	m.machine.Install(m.adaptor.Forest(), m.adaptor.Demand())
	return AdaptReport{
		AdaptMessages:  rep.AdaptMessages,
		PlanTime:       rep.PlanTime,
		CollectedPairs: rep.Stats.Collected,
		Operations:     rep.Operations,
	}, nil
}

// Plan exposes the topology currently in force.
func (m *Monitor) Plan() *Plan {
	return planFromForest(m.planner, m.adaptor.Forest(), m.adaptor.Demand())
}

// Report summarizes everything the collector observed so far.
func (m *Monitor) Report() DeployReport {
	res := m.machine.Result()
	return DeployReport{
		Rounds:           res.Rounds,
		DemandedPairs:    res.DemandedPairs,
		CoveredPairs:     res.CoveredPairs,
		PercentCollected: res.PercentCollected,
		AvgPercentError:  res.AvgPercentError,
		AvgStaleness:     res.AvgStaleness,
		MessagesSent:     res.MessagesSent,
		MessagesDropped:  res.MessagesDropped,
		ValuesDelivered:  res.ValuesDelivered,
		ErrorSeries:      res.ErrorSeries,
	}
}

// Close stops the session and releases its transport.
func (m *Monitor) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	return m.machine.Close()
}
