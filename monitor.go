package remo

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"remo/internal/adapt"
	"remo/internal/cluster"
	"remo/internal/detect"
	"remo/internal/journal"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/plan"
	"remo/internal/predict"
	"remo/internal/repair"
	"remo/internal/store"
	"remo/internal/task"
	"remo/internal/trace"
	"remo/internal/transport"
	"remo/internal/tree"
	"remo/internal/verify"
)

// Monitor is a live monitoring session: an emulated deployment that
// keeps collecting while the task set changes underneath it. Task
// updates go through the runtime adaptation planner (§4) and the
// resulting topology is swapped into the running overlay — values keep
// flowing, stale views persist across the swap, and the adaptation cost
// is reported per change.
//
// With fault injection (Chaos) or an explicit FailurePolicy the session
// is self-healing: a collector-side failure detector watches per-round
// heartbeats and delivered values, silent nodes are declared dead after
// the suspicion window, the topology is repaired around them (reusing
// the failure-repair planner), and the healed forest is hot-swapped into
// the running overlay. Nodes that come back are detected the same way
// and reintegrated. Every action is recorded in Report().Repairs.
//
// Typical use:
//
//	mon, _ := p.StartMonitor(remo.MonitorConfig{Scheme: remo.AdaptAdaptive})
//	defer mon.Close()
//	mon.Run(20)                       // 20 collection rounds
//	mon.SetTasks(newTasks)            // adapt the topology in place
//	mon.Run(20)
//	fmt.Println(mon.Report().AvgPercentError)
//
// Monitor is safe for concurrent use: Run, SetTasks, Report, Plan and
// Close may be called from different goroutines. Rounds are serialized;
// a SetTasks lands between rounds of a concurrent Run.
type Monitor struct {
	mu      sync.Mutex
	planner *Planner
	adaptor *adapt.Adaptor
	machine *cluster.Machine
	closed  bool

	// heal enables automatic repair (false = detect and report only).
	heal    bool
	builder tree.Builder
	trace   *TraceRecorder
	// baseDemand is the demand of the current task set before failure
	// pruning — the target to restore when nodes recover.
	baseDemand *task.Demand
	// dead tracks declared-dead nodes already pruned from the topology.
	dead map[model.NodeID]struct{}

	failures   int
	recoveries int
	repairs    []RepairEvent
	// replans records every SetTasks-driven plan swap's diff.
	replans []ReplanEvent

	// verifyOn mirrors the planner's WithVerification setting: every
	// topology hot-swapped in by the self-healing loop is cross-checked
	// by the invariant checker, and Verify covers live results too.
	verifyOn bool
	// verifyErr is the first verification failure observed by the
	// self-healing loop (surfaced by Verify and Run).
	verifyErr error

	// Durability state (nil/zero unless the session journals).
	journal    *journal.Writer
	journalDir string
	jopts      journal.Options
	// repo retains every collected value; it is both the queryable
	// repository and the state checkpointed to the journal.
	repo *store.Store
	// proc, when provided, has its trigger re-arm state checkpointed.
	proc *store.Processor
	// pending buffers the current round's accepted values between the
	// machine's absorb and the journal append (coordinator goroutine
	// only, under mu).
	pending []journal.SampleRec
	// journalErr is the first journal write failure (surfaced by Run).
	journalErr error
	// restarts counts successful collector resumes.
	restarts int

	// Sharded durability (nil unless the session shards and journals).
	// Each shard owns a journal directory under the session's, a scoped
	// repository of the values it collected, and its own pending buffer,
	// so a shard crash loses only that shard's unjournaled tail.
	shardRepos    []*store.Store
	shardPending  [][]journal.SampleRec
	shardJournals []*journal.Writer
	// movesSeen is how many dispatcher moves the main journal has
	// already captured as assignment records.
	movesSeen int
}

// FailurePolicy configures the self-healing behavior of a Monitor.
type FailurePolicy struct {
	// SuspicionRounds is how many consecutive silent rounds the failure
	// detector tolerates before declaring a node dead (default 3).
	SuspicionRounds int
	// DisableRepair keeps the detector on but leaves the topology alone:
	// failures are detected and reported, not repaired.
	DisableRepair bool
}

// MonitorConfig parameterizes a live session.
type MonitorConfig struct {
	// Scheme selects the adaptation policy. The default is
	// AdaptIncremental — scoped replanning seeded from the live
	// partition — unless the planner disabled it via
	// WithIncrementalReplan(false), which falls back to AdaptAdaptive.
	Scheme AdaptScheme
	// Source overrides the ground-truth value generator.
	Source ValueSource
	// UseTCP runs the overlay over loopback TCP.
	UseTCP bool
	// Seed decorrelates the default value generator.
	Seed uint64
	// OnValue receives every collected value (see DeployConfig.OnValue).
	OnValue func(pair Pair, round int, value float64)
	// Trace records structured emulation events.
	Trace *TraceRecorder
	// Chaos schedules fault injection (crashes, recoveries, loss, delay)
	// over the session. Setting it arms the failure detector and the
	// self-healing loop.
	Chaos *ChaosConfig
	// Failure tunes the detector and repair behavior; setting it (even
	// zero-valued) arms detection without requiring chaos injection.
	Failure *FailurePolicy
	// Journal, when set, makes the session durable: collector state is
	// checkpointed and write-ahead logged under this directory, epoch
	// fencing is armed, and leaves buffer outgoing values across
	// collector outages (see Monitor.Resume). Defaults to the planner's
	// WithJournal directory.
	Journal string
	// LeafBufferFrames bounds each node's outgoing buffer when
	// journaling (default 64 frames; ignored without Journal).
	LeafBufferFrames int
	// JournalCheckpointEvery is the checkpoint cadence in rounds
	// (default 16; ignored without Journal).
	JournalCheckpointEvery int
	// Processor, when set alongside Journal, is fed every collected
	// value and has its trigger re-arm state checkpointed, so triggers
	// resume with their cooldowns intact.
	Processor *Processor
	// Shards > 1 runs the collection tier as that many collector shards
	// behind a leader-elected dispatcher: the forest is spread across
	// them by placement cost, a shard death orphans only its trees (the
	// dispatcher re-homes them onto survivors), and with Journal set
	// each shard checkpoints its own state under Journal/shard-<i> (see
	// Monitor.ResumeShard).
	Shards int
	// ShardLease overrides the dispatcher's leadership lease length in
	// rounds (default shard.DefaultLeaseRounds; ignored unless
	// Shards > 1).
	ShardLease int
}

// ErrMonitorClosed is returned by operations on a closed Monitor.
var ErrMonitorClosed = errors.New("remo: monitor closed")

// ErrUnreachable marks the permanent branch of the transport's Send
// error taxonomy: the destination stayed unreachable after bounded
// retries. Test with errors.Is.
var ErrUnreachable = transport.ErrUnreachable

// StartMonitor plans the current task set and boots the live session.
func (p *Planner) StartMonitor(cfg MonitorConfig) (*Monitor, error) {
	return p.startMonitor(cfg, p.currentDemand(), nil, nil, nil)
}

// startMonitor boots a session over the given demand (the planner's
// current demand normally, a journal-recovered one on cold resume).
// seedSets, when it forms a valid partition of the demand's universe,
// seeds the initial topology deterministically from a journaled
// partition instead of searching, so a cold resume rebuilds the exact
// pre-crash forest. seedAssign likewise seeds the shard dispatcher's
// tree→shard map from a journaled assignment, and seedModels seeds
// both ends of the forecasting replicas from journaled snapshots (a
// cold restart restores leaf and collector from the same snapshot, so
// lockstep holds from round zero).
func (p *Planner) startMonitor(cfg MonitorConfig, demand *task.Demand, seedSets []model.AttrSet, seedAssign map[string]int, seedModels map[model.Pair]predict.Snapshot) (*Monitor, error) {
	scheme := cfg.Scheme
	if scheme == "" {
		if p.incReplan {
			scheme = AdaptIncremental
		} else {
			scheme = AdaptAdaptive
		}
	}
	core := p.corePlanner()
	ad := adapt.New(scheme, core, p.sys)
	if len(p.replanOpts) > 0 {
		ad.SetReplanOptions(p.replanOpts...)
	}
	if len(seedSets) > 0 && partition.Validate(seedSets, demand.Universe()) == nil {
		ad.InitPartition(demand, seedSets)
	} else {
		ad.Init(demand)
	}

	var source ValueSource = cfg.Source
	if source == nil {
		source = cluster.BurstyWalk{Seed: cfg.Seed}
	}
	var det *detect.Config
	if cfg.Chaos != nil || cfg.Failure != nil {
		det = &detect.Config{}
		if cfg.Failure != nil {
			det.SuspicionRounds = cfg.Failure.SuspicionRounds
		}
	}
	labelRegionChaos(cfg.Chaos, p.sys)
	if cfg.Journal == "" {
		cfg.Journal = p.journalDir
	}
	// mon is allocated up front so the journaling observer can close
	// over it; its fields are filled in below, before any round runs.
	mon := &Monitor{}
	observer := cfg.OnValue
	if cfg.Journal != "" {
		mon.repo = store.New(0)
		mon.proc = cfg.Processor
		if cfg.Shards > 1 {
			mon.shardRepos = make([]*store.Store, cfg.Shards)
			mon.shardPending = make([][]journal.SampleRec, cfg.Shards)
			for s := range mon.shardRepos {
				mon.shardRepos[s] = store.New(0)
			}
		}
		user := cfg.OnValue
		observer = func(pair Pair, round int, value float64) {
			mon.repo.Observe(pair, round, value)
			if mon.proc != nil {
				mon.proc.Observe(pair, round, value)
			}
			mon.pending = append(mon.pending, journal.SampleRec{
				Pair: pair, Round: round, Value: value,
			})
			// Route the value to its owning shard's repository and
			// pending buffer; residual (shardless) values live only in
			// the session-wide journal.
			if mon.shardRepos != nil {
				if s := mon.machine.ShardOf(pair); s >= 0 && s < len(mon.shardRepos) {
					mon.shardRepos[s].Observe(pair, round, value)
					mon.shardPending[s] = append(mon.shardPending[s], journal.SampleRec{
						Pair: pair, Round: round, Value: value,
					})
				}
			}
			if user != nil {
				user(pair, round, value)
			}
		}
	}
	ccfg := cluster.Config{
		Sys:             p.sys,
		Forest:          ad.Forest(),
		Demand:          ad.Demand(),
		Spec:            p.aggSpec,
		Source:          source,
		Workers:         p.runtimeWorkers,
		Resolve:         p.resolveAttr,
		EnforceCapacity: true,
		Chaos:           cfg.Chaos,
		Detect:          det,
		Observer:        observer,
		Trace:           cfg.Trace,
		Shards:          cfg.Shards,
		ShardLease:      cfg.ShardLease,
		SeedAssignment:  seedAssign,
		Predict:         p.predSpec,
		SeedModels:      seedModels,
	}
	if cfg.Journal != "" {
		// A durable session fences plan epochs and buffers leaf output, so
		// the recovery path has clean semantics to restore into.
		ccfg.FenceEpochs = true
		ccfg.LeafBuffer = cfg.LeafBufferFrames
		if ccfg.LeafBuffer <= 0 {
			ccfg.LeafBuffer = 64
		}
	}
	if cfg.UseTCP {
		tr, err := transport.NewTCP(p.sys.NodeIDs())
		if err != nil {
			return nil, fmt.Errorf("remo: start TCP transport: %w", err)
		}
		ccfg.Transport = tr
	}
	machine, err := cluster.NewMachine(ccfg)
	if err != nil {
		return nil, fmt.Errorf("remo: start monitor: %w", err)
	}
	mon.planner = p
	mon.adaptor = ad
	mon.machine = machine
	mon.heal = det != nil && (cfg.Failure == nil || !cfg.Failure.DisableRepair)
	mon.builder = core.Builder()
	mon.trace = cfg.Trace
	mon.baseDemand = ad.Demand().Clone()
	mon.dead = make(map[model.NodeID]struct{})
	mon.verifyOn = p.verifyOn
	if cfg.Journal != "" {
		mon.journalDir = cfg.Journal
		mon.jopts = journal.Options{CheckpointEvery: cfg.JournalCheckpointEvery}
		w, err := journal.Create(cfg.Journal, mon.jopts, mon.journalState())
		if err != nil {
			_ = machine.Close()
			return nil, fmt.Errorf("remo: start journal: %w", err)
		}
		mon.journal = w
		if cfg.Shards > 1 {
			mon.shardJournals = make([]*journal.Writer, cfg.Shards)
			for s := range mon.shardJournals {
				sw, err := journal.Create(mon.shardDir(s), mon.jopts, mon.shardJournalState(s))
				if err != nil {
					_ = mon.Close()
					return nil, fmt.Errorf("remo: start shard journal %d: %w", s, err)
				}
				mon.shardJournals[s] = sw
			}
		}
	}
	return mon, nil
}

// shardDir is the journal directory of shard s, under the session's.
func (m *Monitor) shardDir(s int) string {
	return filepath.Join(m.journalDir, fmt.Sprintf("shard-%d", s))
}

// currentDemand computes the planner's demand including frequency
// weighting.
func (p *Planner) currentDemand() *task.Demand {
	d := p.mgr.Demand()
	if p.freqSpec != nil {
		d = p.freqSpec.Apply(d)
	}
	return d
}

// Run executes n collection rounds, applying self-healing between
// rounds: failure-detector verdicts reached during a round trigger an
// automatic topology repair (or reintegration) before the next one.
func (m *Monitor) Run(n int) error {
	for i := 0; i < n; i++ {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return ErrMonitorClosed
		}
		err := m.machine.Step()
		if err == nil {
			m.selfHeal()
			m.journalRound()
			err = m.verifyErr
			if err == nil {
				err = m.journalErr
			}
		}
		m.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// journalRound appends the executed round's accepted values to the WAL
// and checkpoints at the configured cadence. While the collector is
// down nothing is written — a dead collector cannot persist anything,
// which is precisely the window recovery must cover. Called with m.mu
// held.
func (m *Monitor) journalRound() {
	if m.journal == nil {
		return
	}
	if m.machine.CollectorDown() {
		m.pending = m.pending[:0]
		return
	}
	// New dispatcher decisions (orphan re-dispatches, rebalances) are
	// captured as full-assignment records before the samples, so a cold
	// resume rebuilds the identical tree→shard map.
	if m.machine.ShardCount() > 1 {
		if moved := len(m.machine.ShardMoves()); moved > m.movesSeen {
			m.movesSeen = moved
			m.setJournalErr(m.journal.AppendAssignment(m.machine.ShardAssignment()))
		}
	}
	recs := m.pending
	m.pending = m.pending[:0]
	due, err := m.journal.AppendSamples(m.machine.Round()-1, recs)
	if err == nil && due {
		err = m.journal.Checkpoint(m.journalState())
	}
	m.setJournalErr(err)

	// Per-shard journals: a down shard persists nothing — that outage is
	// exactly the window its recovery must cover — and its unjournaled
	// tail is discarded like the single collector's.
	for s := range m.shardJournals {
		srecs := m.shardPending[s]
		m.shardPending[s] = m.shardPending[s][:0]
		if m.machine.ShardDown(s) {
			continue
		}
		due, err := m.shardJournals[s].AppendSamples(m.machine.Round()-1, srecs)
		if err == nil && due {
			err = m.shardJournals[s].Checkpoint(m.shardJournalState(s))
		}
		m.setJournalErr(err)
	}
}

// setJournalErr retains the first journal write failure.
func (m *Monitor) setJournalErr(err error) {
	if err != nil && m.journalErr == nil {
		m.journalErr = fmt.Errorf("remo: journal: %w", err)
	}
}

// journalState snapshots the durable session state. Called with m.mu
// held (or before the monitor is live).
func (m *Monitor) journalState() journal.State {
	s := journal.State{
		Epoch:       m.machine.Epoch(),
		Fingerprint: m.adaptor.Forest().Fingerprint(),
		Round:       m.machine.Round() - 1,
		Failures:    m.failures,
		Recoveries:  m.recoveries,
		Repairs:     len(m.repairs),
		Demand:      m.adaptor.Demand(),
		BaseDemand:  m.baseDemand,
		Partition:   m.adaptor.Partition(),
		Store:       m.repo,
		Dead:        make(map[model.NodeID]int),
	}
	if det := m.machine.Detector(); det != nil {
		s.Dead = det.DeadAt()
	}
	if m.proc != nil {
		s.Cooldowns = m.proc.Cooldowns()
	}
	if m.machine.ShardCount() > 1 {
		s.Assignment = m.machine.ShardAssignment()
	}
	s.Models = m.machine.PredictSnapshots()
	return s
}

// shardJournalState snapshots shard s's durable state: the scoped
// repository of values it collected, under the session's current epoch
// and fingerprint. Called with m.mu held (or before the monitor is
// live).
func (m *Monitor) shardJournalState(s int) journal.State {
	return journal.State{
		Epoch:       m.machine.Epoch(),
		Fingerprint: m.adaptor.Forest().Fingerprint(),
		Round:       m.machine.Round() - 1,
		Store:       m.shardRepos[s],
	}
}

// journalInstall logs a plan install (epoch bump) to the WAL. Called
// with m.mu held.
func (m *Monitor) journalInstall() {
	if m.journal == nil {
		return
	}
	m.setJournalErr(m.journal.AppendEpoch(
		m.machine.Epoch(), m.adaptor.Forest().Fingerprint(), m.adaptor.Demand()))
	// An install retargets the dispatcher (fresh trees get placed), so
	// the assignment in force is re-journaled alongside the epoch.
	if m.machine.ShardCount() > 1 {
		m.movesSeen = len(m.machine.ShardMoves())
		m.setJournalErr(m.journal.AppendAssignment(m.machine.ShardAssignment()))
	}
}

// Fingerprint returns the installed forest's structural fingerprint —
// the identity a resumed session is matched against (ResumeReport.
// PlanMatched).
func (m *Monitor) Fingerprint() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.adaptor.Forest().Fingerprint()
}

// Round returns the next round to execute.
func (m *Monitor) Round() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.Round()
}

// selfHeal consumes the failure detector's verdicts and closes the
// detect→repair→resume loop. Called with m.mu held, between rounds.
func (m *Monitor) selfHeal() {
	verdicts := m.machine.TakeVerdicts()
	if len(verdicts) == 0 {
		return
	}
	if m.journal != nil {
		for _, v := range verdicts {
			m.setJournalErr(m.journal.AppendVerdict(v.Node, v.DeclaredAt, v.Recovered))
		}
	}
	var failed, recovered []NodeID
	detection := 0
	for _, v := range verdicts {
		if v.Recovered {
			recovered = append(recovered, v.Node)
			continue
		}
		failed = append(failed, v.Node)
		if lag := v.DeclaredAt - v.LastHeard; lag > detection {
			detection = lag
		}
	}
	m.failures += len(failed)
	m.recoveries += len(recovered)
	if !m.heal {
		// Detection-only mode still tracks the dead set for reporting.
		for _, n := range failed {
			m.dead[n] = struct{}{}
		}
		for _, n := range recovered {
			delete(m.dead, n)
		}
		return
	}
	if len(failed) > 0 {
		m.repairFailed(failed, detection)
	}
	if len(recovered) > 0 {
		m.reintegrate(recovered)
	}
	m.verifySwap()
}

// verifySwap cross-checks the topology the self-healing loop just
// installed. Called with m.mu held; the first failure is retained and
// surfaced by Run and Verify.
func (m *Monitor) verifySwap() {
	if !m.verifyOn || m.verifyErr != nil {
		return
	}
	ctx := verify.Context{
		Sys:     m.planner.sys,
		Demand:  m.adaptor.Demand(),
		Spec:    m.planner.aggSpec,
		Resolve: m.planner.resolveAttr,
	}
	if err := verify.Plan(ctx, m.adaptor.Forest()); err != nil {
		m.verifyErr = fmt.Errorf("remo: repaired topology failed verification: %w", err)
	}
}

// Verify cross-checks the session's current state against the
// verification harness: the topology in force (structure, ownership,
// capacity against the currently installed demand) and the collector's
// cumulative result. It also surfaces the first verification failure
// recorded by the self-healing loop. Verification must be armed via
// WithVerification on the planner; otherwise Verify runs the same
// checks on demand.
func (m *Monitor) Verify() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.verifyErr != nil {
		return m.verifyErr
	}
	ctx := verify.Context{
		Sys:     m.planner.sys,
		Demand:  m.adaptor.Demand(),
		Spec:    m.planner.aggSpec,
		Resolve: m.planner.resolveAttr,
	}
	if err := verify.Plan(ctx, m.adaptor.Forest()); err != nil {
		return fmt.Errorf("remo: live topology failed verification: %w", err)
	}
	if err := verify.Result(ctx, m.machine.Result()); err != nil {
		return fmt.Errorf("remo: live result failed verification: %w", err)
	}
	if m.machine.ShardCount() > 1 {
		st := verify.ShardState{
			Shards:     m.machine.ShardCount(),
			Assignment: m.machine.ShardAssignment(),
			Down:       m.machine.ShardsDownList(),
			Pending:    m.machine.PendingOrphans(),
		}
		if err := verify.Sharding(st, m.adaptor.Forest()); err != nil {
			return fmt.Errorf("remo: sharded tier failed verification: %w", err)
		}
		if err := verify.ShardUnion(m.machine.Result(), m.machine.ShardResults()); err != nil {
			return fmt.Errorf("remo: sharded tier failed verification: %w", err)
		}
	}
	return nil
}

// repairFailed rebuilds the topology around newly declared-dead nodes
// and hot-swaps the healed forest into the running machine.
func (m *Monitor) repairFailed(failed []NodeID, detection int) {
	newlyDead := make(map[model.NodeID]struct{}, len(failed))
	for _, n := range failed {
		newlyDead[n] = struct{}{}
		m.dead[n] = struct{}{}
	}
	// The adaptor's demand is already pruned of earlier failures, so
	// repairing against the newly-dead set alone keeps the accounting
	// incremental.
	healed, rep := repair.Repair(repair.Config{
		Sys:     m.planner.sys,
		Demand:  m.adaptor.Demand(),
		Spec:    m.planner.aggSpec,
		Builder: m.builder,
	}, m.adaptor.Forest(), newlyDead)
	pruned, _ := repair.Prune(m.adaptor.Demand(), newlyDead)
	m.adaptor.Rewire(pruned, healed)
	m.machine.Install(healed, pruned)
	m.journalInstall()

	ev := RepairEvent{
		Round:           m.machine.Round(),
		Failed:          failed,
		DetectionRounds: detection,
		TreesRebuilt:    rep.TreesRebuilt,
		EdgesChanged:    rep.EdgesChanged,
		PairsLost:       rep.PairsLost,
		CoverageAfter:   plannedCoverage(healed, pruned, m.planner),
	}
	m.repairs = append(m.repairs, ev)
	if m.journal != nil {
		m.setJournalErr(m.journal.AppendRepair(ev.Round))
	}
	if m.trace != nil {
		m.trace.Record(trace.Event{
			Round: ev.Round, Kind: trace.Repair,
			Node: model.Central, Values: len(failed),
		})
	}
}

// reintegrate restores recovered nodes' demanded pairs (from the task
// set's base demand) and replans through the adaptor.
func (m *Monitor) reintegrate(recovered []NodeID) {
	for _, n := range recovered {
		delete(m.dead, n)
	}
	restored, _ := repair.Prune(m.baseDemand, m.dead)
	rep := m.adaptor.Apply(restored)
	m.machine.Install(m.adaptor.Forest(), m.adaptor.Demand())
	m.journalInstall()

	ev := RepairEvent{
		Round:         m.machine.Round(),
		Recovered:     recovered,
		EdgesChanged:  rep.AdaptMessages,
		CoverageAfter: plannedCoverage(m.adaptor.Forest(), m.adaptor.Demand(), m.planner),
	}
	m.repairs = append(m.repairs, ev)
	if m.journal != nil {
		m.setJournalErr(m.journal.AppendRepair(ev.Round))
	}
	if m.trace != nil {
		m.trace.Record(trace.Event{
			Round: ev.Round, Kind: trace.Repair,
			Node: model.Central, Values: len(recovered),
		})
	}
}

// plannedCoverage is the percentage of demanded pairs the forest
// collects, per the planner's static stats.
func plannedCoverage(f *plan.Forest, d *task.Demand, p *Planner) float64 {
	total := len(d.Pairs())
	if total == 0 {
		return 100
	}
	st := f.ComputeStats(d, p.sys, p.aggSpec)
	return 100 * float64(st.Collected) / float64(total)
}

// SetTasks replaces the task set, adapts the topology per the session's
// scheme, and rewires the running overlay. Nodes currently declared
// dead stay excluded until the detector sees them recover.
func (m *Monitor) SetTasks(tasks []Task) (AdaptReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return AdaptReport{}, ErrMonitorClosed
	}
	mgr := task.NewManager(
		task.WithSystem(m.planner.sys),
		task.WithAliasResolver(m.planner.resolveAttr),
	)
	for _, t := range tasks {
		if err := mgr.Add(t); err != nil {
			return AdaptReport{}, fmt.Errorf("remo: %w", err)
		}
	}
	d := mgr.Demand()
	if m.planner.freqSpec != nil {
		d = m.planner.freqSpec.Apply(d)
	}
	m.baseDemand = d.Clone()
	if len(m.dead) > 0 {
		d, _ = repair.Prune(d, m.dead)
	}
	rep := m.adaptor.Apply(d)
	diff := m.machine.InstallDiff(m.adaptor.Forest(), m.adaptor.Demand())
	ev := ReplanEvent{
		Round:         m.machine.Round(),
		TreesKept:     len(diff.Kept),
		TreesRebuilt:  len(diff.Rebuilt),
		TreesDropped:  len(diff.Dropped),
		ReusePct:      diff.ReusePct(),
		Incremental:   rep.Replan.Incremental,
		FellBack:      rep.Replan.FellBack,
		PlanTime:      rep.PlanTime,
		AdaptMessages: rep.AdaptMessages,
	}
	m.replans = append(m.replans, ev)
	if m.trace != nil {
		m.trace.Record(trace.Event{
			Round: ev.Round, Kind: trace.Replan,
			Node: model.Central, Values: ev.TreesRebuilt,
		})
	}
	if m.journal != nil {
		m.setJournalErr(m.journal.AppendTasks(m.baseDemand, m.adaptor.Partition(),
			m.adaptor.Forest().Fingerprint(), len(diff.Kept), len(diff.Rebuilt), len(diff.Dropped)))
		m.journalInstall()
	}
	return AdaptReport{
		AdaptMessages:  rep.AdaptMessages,
		PlanTime:       rep.PlanTime,
		CollectedPairs: rep.Stats.Collected,
		Operations:     rep.Operations,
		TreesKept:      ev.TreesKept,
		TreesRebuilt:   ev.TreesRebuilt,
		TreesDropped:   ev.TreesDropped,
		TreeReusePct:   ev.ReusePct,
		Incremental:    ev.Incremental,
		FellBack:       ev.FellBack,
	}, nil
}

// ResumeReport summarizes what a resume recovered from the journal.
type ResumeReport struct {
	// Epoch is the plan epoch after the resume — strictly newer than
	// anything the crashed collector could have been sent, so pre-crash
	// frames are fenced.
	Epoch uint32
	// RecoveredRound is the newest round with journaled samples.
	RecoveredRound int
	// RecoveredSamples is the number of samples restored from the
	// journal into the repository.
	RecoveredSamples int
	// ReplayedRecords counts WAL records applied on top of the latest
	// checkpoint.
	ReplayedRecords int
	// TornTail reports that a torn or corrupt WAL tail was truncated —
	// the signature of a crash mid-write.
	TornTail bool
	// PlanMatched reports that the live topology's fingerprint equals
	// the journaled one: the session resumed onto the exact plan that
	// was installed before the crash.
	PlanMatched bool
}

// Resume restarts this session's crashed central collector from the
// journal in journalDir: views are rebuilt strictly from recovered
// state (never from the dead collector's memory), the failure
// detector restarts with the recovered dead set, the plan epoch
// advances so stale pre-crash frames are fenced, and the leaves' — who
// never died — buffered values drain into the recovered collector on
// the next round. Journaling re-arms into the same directory.
//
// The session must have been started with journaling (MonitorConfig.
// Journal or WithJournal).
func (m *Monitor) Resume(journalDir string) (ResumeReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ResumeReport{}, ErrMonitorClosed
	}
	if m.repo == nil {
		return ResumeReport{}, errors.New("remo: resume: session was started without journaling")
	}
	rec, err := journal.Recover(journalDir)
	if err != nil {
		return ResumeReport{}, fmt.Errorf("remo: resume: %w", err)
	}
	st := rec.State
	m.machine.ResumeCollector(cluster.ResumeState{
		Epoch:  st.Epoch,
		Repo:   st.Store,
		Dead:   st.Dead,
		Models: st.Models,
	})
	m.failures = st.Failures
	m.recoveries = st.Recoveries
	m.dead = make(map[model.NodeID]struct{}, len(st.Dead))
	for n := range st.Dead {
		m.dead[n] = struct{}{}
	}
	if st.BaseDemand != nil && len(st.BaseDemand.Pairs()) > 0 {
		m.baseDemand = st.BaseDemand
	}
	m.repo = st.Store
	if m.proc != nil && st.Cooldowns != nil {
		m.proc.RestoreCooldowns(st.Cooldowns)
	}
	m.pending = m.pending[:0]
	m.restarts++

	if m.journal != nil {
		_ = m.journal.Close()
	}
	m.journalDir = journalDir
	w, err := journal.Create(journalDir, m.jopts, m.journalState())
	if err != nil {
		return ResumeReport{}, fmt.Errorf("remo: resume: %w", err)
	}
	m.journal = w
	m.journalErr = nil
	return ResumeReport{
		Epoch:            m.machine.Epoch(),
		RecoveredRound:   rec.LastRound,
		RecoveredSamples: st.Store.Len(),
		ReplayedRecords:  rec.Replayed,
		TornTail:         rec.Torn,
		PlanMatched:      m.adaptor.Forest().Fingerprint() == st.Fingerprint,
	}, nil
}

// ResumeShard restarts one crashed collector shard from its own
// journal (Journal/shard-<s>): the shard's views are rebuilt strictly
// from its recovered repository, its trees open an epoch past anything
// the dead shard could have been sent, and the dispatcher rebalances
// trees back onto it as soon as it heartbeats. The other shards are
// untouched — that is the point of sharding the collection tier.
//
// The session must have been started with both Shards > 1 and
// journaling.
func (m *Monitor) ResumeShard(s int) (ResumeReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ResumeReport{}, ErrMonitorClosed
	}
	if m.shardJournals == nil {
		return ResumeReport{}, errors.New("remo: resume shard: session is not sharded or not journaled")
	}
	if s < 0 || s >= len(m.shardJournals) {
		return ResumeReport{}, fmt.Errorf("remo: resume shard: shard %d out of [0,%d)", s, len(m.shardJournals))
	}
	rec, err := journal.Recover(m.shardDir(s))
	if err != nil {
		return ResumeReport{}, fmt.Errorf("remo: resume shard %d: %w", s, err)
	}
	st := rec.State
	if err := m.machine.ResumeShard(s, cluster.ResumeState{
		Epoch:  st.Epoch,
		Repo:   st.Store,
		Models: st.Models,
	}); err != nil {
		return ResumeReport{}, fmt.Errorf("remo: resume shard %d: %w", s, err)
	}
	m.shardRepos[s] = st.Store
	m.shardPending[s] = m.shardPending[s][:0]
	m.restarts++

	if m.shardJournals[s] != nil {
		_ = m.shardJournals[s].Close()
	}
	w, err := journal.Create(m.shardDir(s), m.jopts, m.shardJournalState(s))
	if err != nil {
		return ResumeReport{}, fmt.Errorf("remo: resume shard %d: %w", s, err)
	}
	m.shardJournals[s] = w
	return ResumeReport{
		Epoch:            m.machine.Epoch(),
		RecoveredRound:   rec.LastRound,
		RecoveredSamples: st.Store.Len(),
		ReplayedRecords:  rec.Replayed,
		TornTail:         rec.Torn,
		PlanMatched:      m.adaptor.Forest().Fingerprint() == st.Fingerprint,
	}, nil
}

// ResumeMonitor cold-starts a monitoring session from a journal: the
// recovered installed demand is replanned, a fresh machine boots at
// round zero, and the collector is seeded with the journal's store,
// dead set and epoch. Use it when the whole process died; the
// round clock restarts, so recovered dead declarations are anchored at
// -1 (any fresh evidence of life resurrects) and recovered views are
// clamped below round zero.
func (p *Planner) ResumeMonitor(journalDir string, cfg MonitorConfig) (*Monitor, ResumeReport, error) {
	rec, err := journal.Recover(journalDir)
	if err != nil {
		return nil, ResumeReport{}, fmt.Errorf("remo: resume: %w", err)
	}
	st := rec.State
	cfg.Journal = journalDir
	demand := st.Demand
	if demand == nil || len(demand.Pairs()) == 0 {
		demand = p.currentDemand()
	}
	// Per-shard journals must be read before startMonitor re-seals them
	// with fresh (empty) checkpoints. A missing or unreadable shard
	// journal degrades to a cold shard, not a failed resume.
	var shardRecs []*journal.Recovered
	if cfg.Shards > 1 {
		shardRecs = make([]*journal.Recovered, cfg.Shards)
		for s := range shardRecs {
			dir := filepath.Join(journalDir, fmt.Sprintf("shard-%d", s))
			if sr, err := journal.Recover(dir); err == nil {
				shardRecs[s] = sr
			}
		}
	}
	mon, err := p.startMonitor(cfg, demand, st.Partition, st.Assignment, st.Models)
	if err != nil {
		return nil, ResumeReport{}, err
	}
	if st.BaseDemand != nil && len(st.BaseDemand.Pairs()) > 0 {
		mon.baseDemand = st.BaseDemand
	}
	mon.failures = st.Failures
	mon.recoveries = st.Recoveries
	mon.dead = make(map[model.NodeID]struct{}, len(st.Dead))
	coldDead := make(map[model.NodeID]int, len(st.Dead))
	for n := range st.Dead {
		mon.dead[n] = struct{}{}
		coldDead[n] = -1
	}
	mon.repo = st.Store
	if mon.proc != nil && st.Cooldowns != nil {
		mon.proc.RestoreCooldowns(st.Cooldowns)
	}
	mon.restarts = 1
	if mon.machine.ShardCount() > 1 {
		// Sharded cold resume: each shard's views are seeded from its own
		// journal (the main journal's assignment already rebuilt the
		// tree→shard map via SeedAssignment), fenced past both the
		// session epoch and the shard's journaled one.
		for s, sr := range shardRecs {
			if sr == nil {
				continue
			}
			sst := sr.State
			epoch := st.Epoch
			if sst.Epoch > epoch {
				epoch = sst.Epoch
			}
			if err := mon.machine.ResumeShard(s, cluster.ResumeState{
				Epoch: epoch,
				Repo:  sst.Store,
			}); err != nil {
				_ = mon.Close()
				return nil, ResumeReport{}, fmt.Errorf("remo: resume shard %d: %w", s, err)
			}
			mon.shardRepos[s] = sst.Store
		}
	} else {
		mon.machine.ResumeCollector(cluster.ResumeState{
			Epoch: st.Epoch,
			Repo:  st.Store,
			Dead:  coldDead,
		})
	}
	// Re-seal the journals with the recovered (not empty) state.
	if err := mon.journal.Checkpoint(mon.journalState()); err != nil {
		_ = mon.Close()
		return nil, ResumeReport{}, fmt.Errorf("remo: resume: %w", err)
	}
	for s := range mon.shardJournals {
		if err := mon.shardJournals[s].Checkpoint(mon.shardJournalState(s)); err != nil {
			_ = mon.Close()
			return nil, ResumeReport{}, fmt.Errorf("remo: resume shard %d: %w", s, err)
		}
	}
	return mon, ResumeReport{
		Epoch:            mon.machine.Epoch(),
		RecoveredRound:   rec.LastRound,
		RecoveredSamples: st.Store.Len(),
		ReplayedRecords:  rec.Replayed,
		TornTail:         rec.Torn,
		PlanMatched:      mon.adaptor.Forest().Fingerprint() == st.Fingerprint,
	}, nil
}

// Store exposes the session's value repository (nil unless the session
// journals). It retains every collected value and is the state
// checkpointed for crash recovery.
func (m *Monitor) Store() *Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.repo
}

// Plan exposes the topology currently in force.
func (m *Monitor) Plan() *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return planFromForest(m.planner, m.adaptor.Forest(), m.adaptor.Demand())
}

// Failed lists the nodes currently declared dead, in ID order.
func (m *Monitor) Failed() []NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeID, 0, len(m.dead))
	for n := range m.dead {
		out = append(out, n)
	}
	model.SortNodes(out)
	return out
}

// Report summarizes everything the collector observed so far, including
// the session's self-healing history.
func (m *Monitor) Report() DeployReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := m.machine.Result()
	return DeployReport{
		Rounds:            res.Rounds,
		DemandedPairs:     res.DemandedPairs,
		CoveredPairs:      res.CoveredPairs,
		PercentCollected:  res.PercentCollected,
		AvgPercentError:   res.AvgPercentError,
		AvgStaleness:      res.AvgStaleness,
		MessagesSent:      res.MessagesSent,
		MessagesDropped:   res.MessagesDropped,
		ValuesDelivered:   res.ValuesDelivered,
		ValuesObserved:    res.ValuesObserved,
		ValuesSuppressed:  res.ValuesSuppressed,
		ValuesImputed:     res.ValuesImputed,
		ModelSyncs:        res.ModelSyncs,
		MarkersLost:       res.MarkersLost,
		ImputeBandMax:     res.ImputeBandMax,
		ErrorSeries:       res.ErrorSeries,
		FailuresDetected:  m.failures,
		NodesRecovered:    m.recoveries,
		Repairs:           append([]RepairEvent(nil), m.repairs...),
		Replans:           append([]ReplanEvent(nil), m.replans...),
		StaleEpochFrames:  res.StaleEpochFrames,
		FramesBuffered:    res.FramesBuffered,
		FramesShed:        res.FramesShed,
		FramesRedelivered: res.FramesRedelivered,
		CollectorRestarts: m.restarts,
		Shards:            res.Shards,
		ShardsDown:        res.ShardsDown,
		OrphanedTrees:     res.OrphanedTrees,
		TreesRedispatched: res.TreesRedispatched,
		LeaderElections:   res.LeaderElections,
		ShardWatermarks:   res.ShardWatermarks,
		Redispatches:      m.redispatchEvents(),
	}
}

// redispatchEvents converts the dispatcher's move log for reporting.
// Called with m.mu held.
func (m *Monitor) redispatchEvents() []RedispatchEvent {
	moves := m.machine.ShardMoves()
	if len(moves) == 0 {
		return nil
	}
	out := make([]RedispatchEvent, len(moves))
	for i, mv := range moves {
		out[i] = RedispatchEvent{
			Round:     mv.Round,
			TreeKey:   mv.Key,
			FromShard: mv.From,
			ToShard:   mv.To,
		}
	}
	return out
}

// ShardCount returns the number of collector shards (0 for a
// single-collector session).
func (m *Monitor) ShardCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.ShardCount()
}

// ShardAssignment snapshots the dispatcher's tree→shard map (nil for
// single-collector sessions). Orphans awaiting re-dispatch are included,
// booked to the dead shard they came from.
func (m *Monitor) ShardAssignment() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.ShardAssignment()
}

// ShardLeader returns the dispatcher's current leaseholder (-1 for
// single-collector sessions).
func (m *Monitor) ShardLeader() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.ShardLeader()
}

// CollectorDown reports whether the central collector is currently in
// a crash window (chaos-injected or otherwise). A serve-mode backend
// polls it to decide when to auto-resume from the journal.
func (m *Monitor) CollectorDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.CollectorDown()
}

// JournalDir returns the session's journal directory ("" for
// non-durable sessions).
func (m *Monitor) JournalDir() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journalDir
}

// Checkpoint forces a journal checkpoint of the session's durable state
// now, off the usual cadence — a serve-mode drain seals one before the
// process exits. It is a no-op error on non-durable sessions.
func (m *Monitor) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrMonitorClosed
	}
	if m.journal == nil {
		return errors.New("remo: checkpoint: session was started without journaling")
	}
	if err := m.journal.Checkpoint(m.journalState()); err != nil {
		return fmt.Errorf("remo: checkpoint: %w", err)
	}
	for s, w := range m.shardJournals {
		if w == nil || m.machine.ShardDown(s) {
			continue
		}
		if err := w.Checkpoint(m.shardJournalState(s)); err != nil {
			return fmt.Errorf("remo: checkpoint shard %d: %w", s, err)
		}
	}
	return nil
}

// Close stops the session and releases its transport.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.journal != nil {
		// Seal a final checkpoint so a clean shutdown resumes exactly.
		_ = m.journal.Checkpoint(m.journalState())
		_ = m.journal.Close()
		m.journal = nil
	}
	for s, w := range m.shardJournals {
		if w == nil {
			continue
		}
		if !m.machine.ShardDown(s) {
			_ = w.Checkpoint(m.shardJournalState(s))
		}
		_ = w.Close()
	}
	m.shardJournals = nil
	return m.machine.Close()
}
