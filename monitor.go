package remo

import (
	"errors"
	"fmt"
	"sync"

	"remo/internal/adapt"
	"remo/internal/cluster"
	"remo/internal/detect"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/repair"
	"remo/internal/task"
	"remo/internal/trace"
	"remo/internal/transport"
	"remo/internal/tree"
	"remo/internal/verify"
)

// Monitor is a live monitoring session: an emulated deployment that
// keeps collecting while the task set changes underneath it. Task
// updates go through the runtime adaptation planner (§4) and the
// resulting topology is swapped into the running overlay — values keep
// flowing, stale views persist across the swap, and the adaptation cost
// is reported per change.
//
// With fault injection (Chaos) or an explicit FailurePolicy the session
// is self-healing: a collector-side failure detector watches per-round
// heartbeats and delivered values, silent nodes are declared dead after
// the suspicion window, the topology is repaired around them (reusing
// the failure-repair planner), and the healed forest is hot-swapped into
// the running overlay. Nodes that come back are detected the same way
// and reintegrated. Every action is recorded in Report().Repairs.
//
// Typical use:
//
//	mon, _ := p.StartMonitor(remo.MonitorConfig{Scheme: remo.AdaptAdaptive})
//	defer mon.Close()
//	mon.Run(20)                       // 20 collection rounds
//	mon.SetTasks(newTasks)            // adapt the topology in place
//	mon.Run(20)
//	fmt.Println(mon.Report().AvgPercentError)
//
// Monitor is safe for concurrent use: Run, SetTasks, Report, Plan and
// Close may be called from different goroutines. Rounds are serialized;
// a SetTasks lands between rounds of a concurrent Run.
type Monitor struct {
	mu      sync.Mutex
	planner *Planner
	adaptor *adapt.Adaptor
	machine *cluster.Machine
	closed  bool

	// heal enables automatic repair (false = detect and report only).
	heal    bool
	builder tree.Builder
	trace   *TraceRecorder
	// baseDemand is the demand of the current task set before failure
	// pruning — the target to restore when nodes recover.
	baseDemand *task.Demand
	// dead tracks declared-dead nodes already pruned from the topology.
	dead map[model.NodeID]struct{}

	failures   int
	recoveries int
	repairs    []RepairEvent

	// verifyOn mirrors the planner's WithVerification setting: every
	// topology hot-swapped in by the self-healing loop is cross-checked
	// by the invariant checker, and Verify covers live results too.
	verifyOn bool
	// verifyErr is the first verification failure observed by the
	// self-healing loop (surfaced by Verify and Run).
	verifyErr error
}

// FailurePolicy configures the self-healing behavior of a Monitor.
type FailurePolicy struct {
	// SuspicionRounds is how many consecutive silent rounds the failure
	// detector tolerates before declaring a node dead (default 3).
	SuspicionRounds int
	// DisableRepair keeps the detector on but leaves the topology alone:
	// failures are detected and reported, not repaired.
	DisableRepair bool
}

// MonitorConfig parameterizes a live session.
type MonitorConfig struct {
	// Scheme selects the adaptation policy (default AdaptAdaptive).
	Scheme AdaptScheme
	// Source overrides the ground-truth value generator.
	Source ValueSource
	// UseTCP runs the overlay over loopback TCP.
	UseTCP bool
	// Seed decorrelates the default value generator.
	Seed uint64
	// OnValue receives every collected value (see DeployConfig.OnValue).
	OnValue func(pair Pair, round int, value float64)
	// Trace records structured emulation events.
	Trace *TraceRecorder
	// Chaos schedules fault injection (crashes, recoveries, loss, delay)
	// over the session. Setting it arms the failure detector and the
	// self-healing loop.
	Chaos *ChaosConfig
	// Failure tunes the detector and repair behavior; setting it (even
	// zero-valued) arms detection without requiring chaos injection.
	Failure *FailurePolicy
}

// ErrMonitorClosed is returned by operations on a closed Monitor.
var ErrMonitorClosed = errors.New("remo: monitor closed")

// ErrUnreachable marks the permanent branch of the transport's Send
// error taxonomy: the destination stayed unreachable after bounded
// retries. Test with errors.Is.
var ErrUnreachable = transport.ErrUnreachable

// StartMonitor plans the current task set and boots the live session.
func (p *Planner) StartMonitor(cfg MonitorConfig) (*Monitor, error) {
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = AdaptAdaptive
	}
	core := p.corePlanner()
	ad := adapt.New(scheme, core, p.sys)
	ad.Init(p.currentDemand())

	var source ValueSource = cfg.Source
	if source == nil {
		source = cluster.BurstyWalk{Seed: cfg.Seed}
	}
	var det *detect.Config
	if cfg.Chaos != nil || cfg.Failure != nil {
		det = &detect.Config{}
		if cfg.Failure != nil {
			det.SuspicionRounds = cfg.Failure.SuspicionRounds
		}
	}
	ccfg := cluster.Config{
		Sys:             p.sys,
		Forest:          ad.Forest(),
		Demand:          ad.Demand(),
		Spec:            p.aggSpec,
		Source:          source,
		Workers:         p.runtimeWorkers,
		Resolve:         p.resolveAttr,
		EnforceCapacity: true,
		Chaos:           cfg.Chaos,
		Detect:          det,
		Observer:        cfg.OnValue,
		Trace:           cfg.Trace,
	}
	if cfg.UseTCP {
		tr, err := transport.NewTCP(p.sys.NodeIDs())
		if err != nil {
			return nil, fmt.Errorf("remo: start TCP transport: %w", err)
		}
		ccfg.Transport = tr
	}
	machine, err := cluster.NewMachine(ccfg)
	if err != nil {
		return nil, fmt.Errorf("remo: start monitor: %w", err)
	}
	return &Monitor{
		planner:    p,
		adaptor:    ad,
		machine:    machine,
		heal:       det != nil && (cfg.Failure == nil || !cfg.Failure.DisableRepair),
		builder:    core.Builder(),
		trace:      cfg.Trace,
		baseDemand: ad.Demand().Clone(),
		dead:       make(map[model.NodeID]struct{}),
		verifyOn:   p.verifyOn,
	}, nil
}

// currentDemand computes the planner's demand including frequency
// weighting.
func (p *Planner) currentDemand() *task.Demand {
	d := p.mgr.Demand()
	if p.freqSpec != nil {
		d = p.freqSpec.Apply(d)
	}
	return d
}

// Run executes n collection rounds, applying self-healing between
// rounds: failure-detector verdicts reached during a round trigger an
// automatic topology repair (or reintegration) before the next one.
func (m *Monitor) Run(n int) error {
	for i := 0; i < n; i++ {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return ErrMonitorClosed
		}
		err := m.machine.Step()
		if err == nil {
			m.selfHeal()
			err = m.verifyErr
		}
		m.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Round returns the next round to execute.
func (m *Monitor) Round() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.Round()
}

// selfHeal consumes the failure detector's verdicts and closes the
// detect→repair→resume loop. Called with m.mu held, between rounds.
func (m *Monitor) selfHeal() {
	verdicts := m.machine.TakeVerdicts()
	if len(verdicts) == 0 {
		return
	}
	var failed, recovered []NodeID
	detection := 0
	for _, v := range verdicts {
		if v.Recovered {
			recovered = append(recovered, v.Node)
			continue
		}
		failed = append(failed, v.Node)
		if lag := v.DeclaredAt - v.LastHeard; lag > detection {
			detection = lag
		}
	}
	m.failures += len(failed)
	m.recoveries += len(recovered)
	if !m.heal {
		// Detection-only mode still tracks the dead set for reporting.
		for _, n := range failed {
			m.dead[n] = struct{}{}
		}
		for _, n := range recovered {
			delete(m.dead, n)
		}
		return
	}
	if len(failed) > 0 {
		m.repairFailed(failed, detection)
	}
	if len(recovered) > 0 {
		m.reintegrate(recovered)
	}
	m.verifySwap()
}

// verifySwap cross-checks the topology the self-healing loop just
// installed. Called with m.mu held; the first failure is retained and
// surfaced by Run and Verify.
func (m *Monitor) verifySwap() {
	if !m.verifyOn || m.verifyErr != nil {
		return
	}
	ctx := verify.Context{
		Sys:     m.planner.sys,
		Demand:  m.adaptor.Demand(),
		Spec:    m.planner.aggSpec,
		Resolve: m.planner.resolveAttr,
	}
	if err := verify.Plan(ctx, m.adaptor.Forest()); err != nil {
		m.verifyErr = fmt.Errorf("remo: repaired topology failed verification: %w", err)
	}
}

// Verify cross-checks the session's current state against the
// verification harness: the topology in force (structure, ownership,
// capacity against the currently installed demand) and the collector's
// cumulative result. It also surfaces the first verification failure
// recorded by the self-healing loop. Verification must be armed via
// WithVerification on the planner; otherwise Verify runs the same
// checks on demand.
func (m *Monitor) Verify() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.verifyErr != nil {
		return m.verifyErr
	}
	ctx := verify.Context{
		Sys:     m.planner.sys,
		Demand:  m.adaptor.Demand(),
		Spec:    m.planner.aggSpec,
		Resolve: m.planner.resolveAttr,
	}
	if err := verify.Plan(ctx, m.adaptor.Forest()); err != nil {
		return fmt.Errorf("remo: live topology failed verification: %w", err)
	}
	if err := verify.Result(ctx, m.machine.Result()); err != nil {
		return fmt.Errorf("remo: live result failed verification: %w", err)
	}
	return nil
}

// repairFailed rebuilds the topology around newly declared-dead nodes
// and hot-swaps the healed forest into the running machine.
func (m *Monitor) repairFailed(failed []NodeID, detection int) {
	newlyDead := make(map[model.NodeID]struct{}, len(failed))
	for _, n := range failed {
		newlyDead[n] = struct{}{}
		m.dead[n] = struct{}{}
	}
	// The adaptor's demand is already pruned of earlier failures, so
	// repairing against the newly-dead set alone keeps the accounting
	// incremental.
	healed, rep := repair.Repair(repair.Config{
		Sys:     m.planner.sys,
		Demand:  m.adaptor.Demand(),
		Spec:    m.planner.aggSpec,
		Builder: m.builder,
	}, m.adaptor.Forest(), newlyDead)
	pruned, _ := repair.Prune(m.adaptor.Demand(), newlyDead)
	m.adaptor.Rewire(pruned, healed)
	m.machine.Install(healed, pruned)

	ev := RepairEvent{
		Round:           m.machine.Round(),
		Failed:          failed,
		DetectionRounds: detection,
		TreesRebuilt:    rep.TreesRebuilt,
		EdgesChanged:    rep.EdgesChanged,
		PairsLost:       rep.PairsLost,
		CoverageAfter:   plannedCoverage(healed, pruned, m.planner),
	}
	m.repairs = append(m.repairs, ev)
	if m.trace != nil {
		m.trace.Record(trace.Event{
			Round: ev.Round, Kind: trace.Repair,
			Node: model.Central, Values: len(failed),
		})
	}
}

// reintegrate restores recovered nodes' demanded pairs (from the task
// set's base demand) and replans through the adaptor.
func (m *Monitor) reintegrate(recovered []NodeID) {
	for _, n := range recovered {
		delete(m.dead, n)
	}
	restored, _ := repair.Prune(m.baseDemand, m.dead)
	rep := m.adaptor.Apply(restored)
	m.machine.Install(m.adaptor.Forest(), m.adaptor.Demand())

	ev := RepairEvent{
		Round:         m.machine.Round(),
		Recovered:     recovered,
		EdgesChanged:  rep.AdaptMessages,
		CoverageAfter: plannedCoverage(m.adaptor.Forest(), m.adaptor.Demand(), m.planner),
	}
	m.repairs = append(m.repairs, ev)
	if m.trace != nil {
		m.trace.Record(trace.Event{
			Round: ev.Round, Kind: trace.Repair,
			Node: model.Central, Values: len(recovered),
		})
	}
}

// plannedCoverage is the percentage of demanded pairs the forest
// collects, per the planner's static stats.
func plannedCoverage(f *plan.Forest, d *task.Demand, p *Planner) float64 {
	total := len(d.Pairs())
	if total == 0 {
		return 100
	}
	st := f.ComputeStats(d, p.sys, p.aggSpec)
	return 100 * float64(st.Collected) / float64(total)
}

// SetTasks replaces the task set, adapts the topology per the session's
// scheme, and rewires the running overlay. Nodes currently declared
// dead stay excluded until the detector sees them recover.
func (m *Monitor) SetTasks(tasks []Task) (AdaptReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return AdaptReport{}, ErrMonitorClosed
	}
	mgr := task.NewManager(
		task.WithSystem(m.planner.sys),
		task.WithAliasResolver(m.planner.resolveAttr),
	)
	for _, t := range tasks {
		if err := mgr.Add(t); err != nil {
			return AdaptReport{}, fmt.Errorf("remo: %w", err)
		}
	}
	d := mgr.Demand()
	if m.planner.freqSpec != nil {
		d = m.planner.freqSpec.Apply(d)
	}
	m.baseDemand = d.Clone()
	if len(m.dead) > 0 {
		d, _ = repair.Prune(d, m.dead)
	}
	rep := m.adaptor.Apply(d)
	m.machine.Install(m.adaptor.Forest(), m.adaptor.Demand())
	return AdaptReport{
		AdaptMessages:  rep.AdaptMessages,
		PlanTime:       rep.PlanTime,
		CollectedPairs: rep.Stats.Collected,
		Operations:     rep.Operations,
	}, nil
}

// Plan exposes the topology currently in force.
func (m *Monitor) Plan() *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return planFromForest(m.planner, m.adaptor.Forest(), m.adaptor.Demand())
}

// Failed lists the nodes currently declared dead, in ID order.
func (m *Monitor) Failed() []NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeID, 0, len(m.dead))
	for n := range m.dead {
		out = append(out, n)
	}
	model.SortNodes(out)
	return out
}

// Report summarizes everything the collector observed so far, including
// the session's self-healing history.
func (m *Monitor) Report() DeployReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := m.machine.Result()
	return DeployReport{
		Rounds:           res.Rounds,
		DemandedPairs:    res.DemandedPairs,
		CoveredPairs:     res.CoveredPairs,
		PercentCollected: res.PercentCollected,
		AvgPercentError:  res.AvgPercentError,
		AvgStaleness:     res.AvgStaleness,
		MessagesSent:     res.MessagesSent,
		MessagesDropped:  res.MessagesDropped,
		ValuesDelivered:  res.ValuesDelivered,
		ErrorSeries:      res.ErrorSeries,
		FailuresDetected: m.failures,
		NodesRecovered:   m.recoveries,
		Repairs:          append([]RepairEvent(nil), m.repairs...),
	}
}

// Close stops the session and releases its transport.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.machine.Close()
}
