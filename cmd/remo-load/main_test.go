package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"remo"
	"remo/internal/load"
	"remo/internal/serve"
)

// bootServe starts an in-process service instance for the harness to
// aim at.
func bootServe(t *testing.T) *httptest.Server {
	t.Helper()
	nodes := make([]remo.Node, 12)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 120,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 600,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := remo.NewPlanner(sys, remo.WithJournal(t.TempDir()))
	srv, err := serve.New(serve.Config{
		Planner:    p,
		Monitor:    remo.MonitorConfig{Seed: 7},
		RoundEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return ts
}

// TestRunJSON drives a short run and checks the JSON report shape.
func TestRunJSON(t *testing.T) {
	ts := bootServe(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"-target", ts.URL,
		"-clients", "8", "-duration", "400ms", "-ramp", "40ms",
		"-think", "exp:15ms", "-mutators", "0.25", "-seed", "5",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out.String())
	}
	if rep.Clients != 8 || rep.Requests == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Errors > 0 {
		t.Fatalf("errors = %d, taxonomy %v", rep.Errors, rep.Taxonomy)
	}
}

// TestRunHuman checks the aligned human-readable report.
func TestRunHuman(t *testing.T) {
	ts := bootServe(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"-target", ts.URL,
		"-clients", "4", "-duration", "300ms",
		"-think", "fixed:10ms", "-mutators", "0.5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"remo-load: 4 clients", "requests:", "admit", "sync", "read", "rounds:", "operations:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no target", nil, "-target is required"},
		{"zero clients", []string{"-target", "http://x", "-clients", "0"}, "-clients must be at least 1"},
		{"zero duration", []string{"-target", "http://x", "-duration", "0s"}, "-duration must be positive"},
		{"mutators over 1", []string{"-target", "http://x", "-mutators", "1.5"}, "fraction in [0, 1]"},
		{"bad think", []string{"-target", "http://x", "-think", "pareto:1s"}, "unknown distribution"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(context.Background(), tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
