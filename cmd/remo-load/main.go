// Command remo-load drives traffic at a remo-serve instance: N
// simulated clients each perform a connect-time full-state sync and
// then loop on think-time-paced work — a configurable fraction mutate
// tasks through the admission API while the rest poll delta reads.
// The run reports admission/sync/read latency percentiles, an error
// taxonomy, and the server's achieved rounds/s.
//
// Usage:
//
//	remo-load -target http://127.0.0.1:7300
//	remo-load -target http://127.0.0.1:7300 -clients 200 -duration 30s
//	remo-load -target http://127.0.0.1:7300 -think uniform:50ms-200ms -mutators 0.5
//	remo-load -target http://127.0.0.1:7300 -json
//
// SIGINT/SIGTERM ends the run early; the report covers the traffic
// sent so far.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"remo/internal/lifecycle"
	"remo/internal/load"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "remo-load:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("remo-load", flag.ContinueOnError)
	var (
		target   = fs.String("target", "", "remo-serve base URL (required)")
		clients  = fs.Int("clients", 50, "simulated clients")
		duration = fs.Duration("duration", 5*time.Second, "run length")
		ramp     = fs.Duration("ramp", 0, "stagger client starts over this window (default duration/4, capped at 2s)")
		think    = fs.String("think", "exp:500ms", "think-time distribution: fixed:100ms, uniform:50ms-200ms, or exp:200ms")
		mutators = fs.Float64("mutators", 0.2, "fraction of clients that mutate tasks (the rest read deltas)")
		seed     = fs.Int64("seed", 1, "random seed")
		tAttrs   = fs.Int("task-attrs", 1, "attributes per mutator task")
		tNodes   = fs.Int("task-nodes", 2, "nodes per mutator task")
		asJSON   = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required: the base URL of a running remo-serve")
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be at least 1 (got %d)", *clients)
	}
	if *duration <= 0 {
		return fmt.Errorf("-duration must be positive (got %v)", *duration)
	}
	if *mutators < 0 || *mutators > 1 {
		return fmt.Errorf("-mutators must be a fraction in [0, 1] (got %v)", *mutators)
	}
	spec, err := load.ParseThink(*think)
	if err != nil {
		return err
	}

	ctx, release := lifecycle.Context(ctx, lifecycle.Options{DrainDeadline: 5 * time.Second})
	defer release()

	rep, err := load.Run(ctx, load.Options{
		BaseURL:     *target,
		Clients:     *clients,
		Duration:    *duration,
		Ramp:        *ramp,
		Think:       spec,
		MutatorFrac: *mutators,
		Seed:        *seed,
		TaskAttrs:   *tAttrs,
		TaskNodes:   *tNodes,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(stdout, "remo-load: %d clients for %v against %s (think %s, %.0f%% mutators)\n",
		rep.Clients, rep.Duration.Round(time.Millisecond), *target, spec, 100**mutators)
	fmt.Fprintf(stdout, "requests: %d total, %d errors\n", rep.Requests, rep.Errors)
	printSummary(stdout, "admit", rep.Admit)
	printSummary(stdout, "sync", rep.Sync)
	printSummary(stdout, "read", rep.Read)
	fmt.Fprintf(stdout, "rounds: %d run (%.1f/s)\n", rep.RoundsRun, rep.RoundsPS)
	fmt.Fprintf(stdout, "operations: %d applied, %d failed, %d rejected; verify failures: %d\n",
		rep.OpsSucceeded, rep.OpsFailed, rep.OpsRejected, rep.VerifyFails)
	if len(rep.Taxonomy) > 0 {
		fmt.Fprintf(stdout, "error taxonomy:\n")
		for code, n := range rep.Taxonomy {
			fmt.Fprintf(stdout, "  %-20s %d\n", code, n)
		}
	}
	return nil
}

// printSummary renders one latency class.
func printSummary(w io.Writer, label string, s load.Summary) {
	if s.Count == 0 {
		fmt.Fprintf(w, "%-6s no samples\n", label)
		return
	}
	fmt.Fprintf(w, "%-6s p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  (n=%d)\n",
		label, s.P50, s.P95, s.P99, s.Max, s.Count)
}
