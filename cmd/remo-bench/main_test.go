package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunRequiresSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no selection accepted")
	}
}

func TestRunSingleFigure(t *testing.T) {
	// fig2 is the only instant figure; it also exercises table output.
	if err := run([]string{"-fig", "fig2", "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "fig2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}
