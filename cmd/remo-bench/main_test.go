package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "fig99"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunRequiresSelection(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("no selection accepted")
	}
}

func TestRunSingleFigure(t *testing.T) {
	// fig2 is the only instant figure; it also exercises table output.
	if err := run(context.Background(), []string{"-fig", "fig2", "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-fig", "fig2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInterrupted(t *testing.T) {
	// A cancelled context stops the sweep at the next figure boundary.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-fig", "fig2", "-scale", "0.1"})
	if err == nil || !strings.Contains(err.Error(), "interrupted after 0 of 1") {
		t.Fatalf("err = %v, want interruption notice", err)
	}
	err = run(ctx, []string{"-fig", "fig2", "-scale", "0.1", "-json"})
	if err == nil || !strings.Contains(err.Error(), "interrupted after 0 of 1") {
		t.Fatalf("json path err = %v, want interruption notice", err)
	}
}
