// Command remo-bench regenerates the paper's evaluation figures as
// result tables.
//
// Usage:
//
//	remo-bench -list
//	remo-bench -fig fig5 [-scale 0.5] [-seed 7] [-rounds 30]
//	remo-bench -all -scale 0.25
//
// Scale 1.0 matches the paper's deployment size (200 nodes, ~200 tasks)
// and can take a while; smaller scales shrink the sweeps proportionally.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"remo/internal/bench"
	"remo/internal/lifecycle"
	"remo/internal/metrics"
	"remo/internal/profiling"
)

func main() {
	// One signal finishes the current figure and flushes profiles; a
	// second signal (or an overlong figure) force-exits.
	ctx, release := lifecycle.Context(context.Background(), lifecycle.Options{})
	defer release()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "remo-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remo-bench", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "", "figure to regenerate (fig2, fig5, ..., fig12)")
		all    = fs.Bool("all", false, "run every figure")
		list   = fs.Bool("list", false, "list available figures")
		scale  = fs.Float64("scale", 0.5, "sweep scale (1.0 = paper scale)")
		seed   = fs.Int64("seed", 1, "random seed")
		rounds = fs.Int("rounds", 0, "emulation rounds for deployment figures (0 = default)")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		asJSON = fs.Bool("json", false, "emit one JSON document instead of aligned tables")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "remo-bench:", err)
		}
	}()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-6s %s\n", e.Name, e.Description)
		}
		return nil
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Rounds: *rounds}
	var selected []bench.Experiment
	switch {
	case *all:
		selected = bench.Registry()
	case *fig != "":
		e, ok := bench.Lookup(*fig)
		if !ok {
			return fmt.Errorf("unknown figure %q (use -list)", *fig)
		}
		selected = []bench.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -fig <name>, -all or -list")
	}

	if *asJSON {
		type runDoc struct {
			Name        string           `json:"name"`
			Description string           `json:"description"`
			Scale       float64          `json:"scale"`
			Seed        int64            `json:"seed"`
			ElapsedMS   int64            `json:"elapsed_ms"`
			Tables      []*metrics.Table `json:"tables"`
		}
		docs := make([]runDoc, 0, len(selected))
		for _, e := range selected {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("interrupted after %d of %d figures", len(docs), len(selected))
			}
			start := time.Now()
			tables := e.Run(opts)
			docs = append(docs, runDoc{
				Name:        e.Name,
				Description: e.Description,
				Scale:       *scale,
				Seed:        *seed,
				ElapsedMS:   time.Since(start).Milliseconds(),
				Tables:      tables,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(docs)
	}

	for i, e := range selected {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted after %d of %d figures", i, len(selected))
		}
		start := time.Now()
		fmt.Printf("== %s — %s (scale %.2f)\n", e.Name, e.Description, *scale)
		for _, tbl := range e.Run(opts) {
			var err error
			if *csv {
				err = tbl.FprintCSV(os.Stdout)
			} else {
				err = tbl.Fprint(os.Stdout)
			}
			if err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Printf("-- %s done in %v\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
