package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunSynthetic(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "15", "-attrs", "6", "-tasks", "8", "-rounds", "8",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"plan:", "emulation: 8 rounds", "coverage:", "avg % error"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestRunSchemes(t *testing.T) {
	for _, scheme := range []string{"remo", "star", "chain"} {
		var out strings.Builder
		err := run(context.Background(), []string{
			"-nodes", "12", "-attrs", "4", "-tasks", "5", "-rounds", "5",
			"-scheme", scheme,
		}, &out)
		if err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
	var out strings.Builder
	if err := run(context.Background(), []string{"-scheme", "bogus"}, &out); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestRunOverTCP(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "8", "-attrs", "3", "-tasks", "4", "-rounds", "5", "-tcp",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loopback TCP") {
		t.Errorf("TCP transport not reported:\n%s", out.String())
	}
}

func TestRunWithTrace(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "6", "-attrs", "2", "-tasks", "3", "-rounds", "4", "-trace", "50",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:") || !strings.Contains(out.String(), "send") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
}

func TestChaosFlagRunsSelfHealingSession(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "24", "-attrs", "6", "-tasks", "8", "-rounds", "18",
		"-chaos", "0.2", "-suspicion", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"self-healing:", "failures detected", "repair:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestChaosDropFlag(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "12", "-attrs", "4", "-tasks", "5", "-rounds", "10",
		"-chaos-drop", "0.2", "-chaos-delay", "0.1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "emulation: 10 rounds") {
		t.Errorf("emulation summary missing:\n%s", out.String())
	}
}

func TestVerifyFlag(t *testing.T) {
	// Plain deploy with verification armed.
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "15", "-attrs", "6", "-tasks", "8", "-rounds", "8", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verification:") {
		t.Errorf("output lacks the verification line:\n%s", out.String())
	}

	// Self-healing chaos session with verification armed: the plan, the
	// repaired hot-swaps, and the live results are all cross-checked.
	out.Reset()
	err = run(context.Background(), []string{
		"-nodes", "20", "-attrs", "6", "-tasks", "10", "-rounds", "12",
		"-chaos", "0.2", "-suspicion", "2", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "verification:") || !strings.Contains(got, "self-healing:") {
		t.Errorf("output lacks verification or self-healing lines:\n%s", got)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero suspicion", []string{"-suspicion", "0"}, "-suspicion must be at least 1"},
		{"negative suspicion", []string{"-suspicion", "-2"}, "-suspicion must be at least 1"},
		{"zero chaos", []string{"-chaos", "0"}, "rate in (0, 1]"},
		{"negative chaos", []string{"-chaos", "-0.5"}, "rate in (0, 1]"},
		{"overshooting drop", []string{"-chaos-drop", "1.5"}, "rate in (0, 1]"},
		{"zero delay", []string{"-chaos-delay", "0"}, "rate in (0, 1]"},
		{"zero rounds", []string{"-rounds", "0"}, "-rounds must be at least 1"},
		{"collector crash without journal", []string{"-chaos-collector", "5"}, "requires -journal"},
		{"collector crash past the run", []string{"-rounds", "10", "-journal", t.TempDir(), "-chaos-collector", "10"}, "must fall inside"},
		{"zero collector crash round", []string{"-journal", t.TempDir(), "-chaos-collector", "0"}, "at least 1"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(context.Background(), tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// Valid rates at the boundary are accepted.
	var out strings.Builder
	if err := run(context.Background(), []string{
		"-nodes", "10", "-attrs", "3", "-tasks", "4", "-rounds", "6",
		"-chaos-drop", "1", "-suspicion", "1",
	}, &out); err != nil {
		t.Errorf("boundary rates rejected: %v", err)
	}
}

func TestCollectorCrashResumeRun(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "20", "-attrs", "5", "-tasks", "8", "-rounds", "30",
		"-journal", t.TempDir(), "-chaos-collector", "8", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"collector crashed at round 8",
		"resumed from journal",
		"durability: 1 collector restart(s)",
		"verification:",
		"emulation: 30 rounds",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestJournalFlagAlone(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "10", "-attrs", "3", "-tasks", "4", "-rounds", "8",
		"-journal", t.TempDir(), "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "emulation: 8 rounds") {
		t.Errorf("emulation summary missing:\n%s", out.String())
	}
}

func TestShardCrashResumeRun(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "20", "-attrs", "5", "-tasks", "8", "-rounds", "30",
		"-shards", "4", "-journal", t.TempDir(), "-chaos-shard", "0", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"shard 0 crashed at round 10",
		"resumed from its journal",
		"sharding: 4 shards (0 down)",
		"re-home:",
		"verification:",
		"emulation: 30 rounds",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestShardsFlagAlone(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "12", "-attrs", "4", "-tasks", "5", "-rounds", "10",
		"-shards", "3", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "sharding: 3 shards (0 down)") {
		t.Errorf("sharding summary missing:\n%s", got)
	}
	if !strings.Contains(got, "emulation: 10 rounds") {
		t.Errorf("emulation summary missing:\n%s", got)
	}
}

func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero shards", []string{"-shards", "0"}, "-shards must be at least 1"},
		{"negative shards", []string{"-shards", "-2"}, "-shards must be at least 1"},
		{"shard crash without shards", []string{"-journal", t.TempDir(), "-chaos-shard", "0"}, "requires -shards"},
		{"shard crash out of range", []string{"-shards", "4", "-journal", t.TempDir(), "-chaos-shard", "4"}, "in [0, 4)"},
		{"negative shard crash", []string{"-shards", "4", "-journal", t.TempDir(), "-chaos-shard", "-1"}, "in [0, 4)"},
		{"shard crash without journal", []string{"-shards", "4", "-chaos-shard", "1"}, "requires -journal"},
		{"collector crash on sharded tier", []string{"-shards", "4", "-journal", t.TempDir(), "-chaos-collector", "5"}, "root never dies"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(context.Background(), tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestPredictFlagRunsSuppression(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "15", "-attrs", "5", "-tasks", "6", "-rounds", "40",
		"-predict", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"suppression:", "values elided", "imputed", "model syncs", "verification:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestPredictFlagWithChaosDropAndSync(t *testing.T) {
	// Dropped frames kill markers with them; the session must ride it out
	// (re-syncs re-lock the replicas) and still report the run.
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "15", "-attrs", "5", "-tasks", "6", "-rounds", "30",
		"-predict", "-predict-eps", "0.05", "-predict-sync", "8",
		"-chaos-drop", "0.15", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "suppression:") || !strings.Contains(got, "emulation: 30 rounds") {
		t.Errorf("suppression or emulation summary missing:\n%s", got)
	}
}

func TestPredictFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"eps without predict", []string{"-predict-eps", "0.02"}, "requires -predict"},
		{"sync without predict", []string{"-predict-sync", "8"}, "requires -predict"},
		{"zero eps", []string{"-predict", "-predict-eps", "0"}, "(0, 1]"},
		{"negative eps", []string{"-predict", "-predict-eps", "-0.01"}, "(0, 1]"},
		{"overshooting eps", []string{"-predict", "-predict-eps", "1.5"}, "(0, 1]"},
		{"zero sync", []string{"-predict", "-predict-sync", "0"}, "at least 1 round"},
		{"negative sync", []string{"-predict", "-predict-sync", "-4"}, "at least 1 round"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(context.Background(), tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// Boundary values are accepted: a 100% band and a 1-round cadence.
	var out strings.Builder
	if err := run(context.Background(), []string{
		"-nodes", "10", "-attrs", "3", "-tasks", "4", "-rounds", "6",
		"-predict", "-predict-eps", "1", "-predict-sync", "1",
	}, &out); err != nil {
		t.Errorf("boundary prediction flags rejected: %v", err)
	}
}

func TestRegionLossRun(t *testing.T) {
	// Partition r1 permanently: the detector declares the region dead,
	// repair re-homes its trees, and the surviving regions hold the
	// coverage floor (machine-checked by VerifyRegionCoverage).
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "30", "-attrs", "6", "-tasks", "15", "-rounds", "24",
		"-regions", "3", "-chaos-region", "1", "-suspicion", "2", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"regions: 3, coverage floor 90% held",
		"r0", "r1", "r2",
		"self-healing:", "repair:",
		"verification:",
		"emulation: 24 rounds",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestRegionLinkFlapRun(t *testing.T) {
	// Flap the r0-r1 link over the middle third: the far side dies and
	// reintegrates, and the floor still holds at the end.
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "20", "-attrs", "5", "-tasks", "8", "-rounds", "24",
		"-regions", "2", "-chaos-link", "r0-r1", "-suspicion", "2", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"regions: 2", "self-healing:", "reintegrate:", "verification:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestRegionsFlagAlone(t *testing.T) {
	// A healthy region-labeled run reports per-region coverage and
	// passes the default floor.
	var out strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "18", "-attrs", "5", "-tasks", "8", "-rounds", "8",
		"-regions", "3", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "regions: 3, coverage floor 90% held") {
		t.Errorf("region summary missing:\n%s", got)
	}
}

func TestRegionFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero regions", []string{"-regions", "0"}, "-regions must be at least 1"},
		{"negative regions", []string{"-regions", "-3"}, "-regions must be at least 1"},
		{"regions with spec", []string{"-spec", "problem.json", "-regions", "3"}, "spec files carry their own region labels"},
		{"partition without regions", []string{"-chaos-region", "1"}, "requires -regions"},
		{"partition out of range", []string{"-regions", "3", "-chaos-region", "3"}, "in [0, 3)"},
		{"negative partition", []string{"-regions", "3", "-chaos-region", "-1"}, "in [0, 3)"},
		{"flap without regions", []string{"-chaos-link", "r0-r1"}, "requires -regions"},
		{"flap out of range", []string{"-regions", "2", "-chaos-link", "r0-r5"}, "outside [0, 2)"},
		{"malformed link", []string{"-regions", "3", "-chaos-link", "east/west"}, "like r0-r1"},
		{"self link", []string{"-regions", "3", "-chaos-link", "r1-r1"}, "two distinct regions"},
		{"floor without regions", []string{"-region-floor", "80"}, "requires -regions"},
		{"overshooting floor", []string{"-regions", "3", "-region-floor", "150"}, "in [0, 100]"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(context.Background(), tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestRunInterrupted(t *testing.T) {
	// A cancelled lifecycle context stops the run before the emulation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, []string{"-nodes", "10", "-attrs", "3", "-tasks", "4", "-rounds", "5"}, &out)
	if err == nil || !strings.Contains(err.Error(), "interrupted before the emulation") {
		t.Fatalf("err = %v, want interruption notice", err)
	}
}
