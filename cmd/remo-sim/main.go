// Command remo-sim plans and emulates a monitoring deployment end to
// end: it generates a synthetic system and task set (or loads a spec),
// plans the topology with a chosen partition scheme, runs the
// goroutine-per-node emulation, and reports coverage, staleness and
// percentage error.
//
// Usage:
//
//	remo-sim -nodes 100 -tasks 50 -rounds 60
//	remo-sim -scheme singleton -tcp
//	remo-sim -spec problem.json -rounds 30
//	remo-sim -nodes 60 -chaos 0.2 -rounds 45
//	remo-sim -rounds 60 -journal /tmp/j -chaos-collector 20 -verify
//
// With -chaos the deployment runs as a self-healing live session: the
// given fraction of nodes crashes a third of the way in, the failure
// detector declares them dead after -suspicion silent rounds, and the
// topology is repaired automatically.
//
// With -journal the session is durable: collector state is checkpointed
// and write-ahead logged under the given directory. -chaos-collector N
// crashes the central collector at round N; the session rides out a
// short outage (leaves buffer their values), resumes from the journal,
// and finishes the run on the recovered state.
//
// With -shards N the collection tier runs as N collector shards behind
// a leader-elected dispatcher; each shard journals its own state under
// -journal/shard-<i>. -chaos-shard S crashes shard S a third of the way
// in: its orphaned trees are re-dispatched onto the survivors within
// the suspicion window, and the shard later resumes from its own
// journal:
//
//	remo-sim -rounds 40 -shards 4 -journal /tmp/j -chaos-shard 1 -verify
//
// With -predict the session runs forecast-driven dead-band traffic
// suppression: leaves and the collector keep bit-identical forecasting
// replicas, values within -predict-eps of the shared prediction travel
// as compact markers instead of payloads, and the collector imputes
// them within the band. The ground truth switches to a utilization-
// style plateau workload, the dynamics suppression exploits:
//
//	remo-sim -rounds 80 -predict -predict-eps 0.01 -verify
//
// With -regions N the synthetic generator cuts the nodes into N WAN
// regions (the collector lives in r0) and inter-region edges are priced
// at the WAN default, so the planner prefers intra-region trees. The
// run reports per-region coverage and enforces -region-floor on every
// surviving region. -chaos-region R partitions region R from the
// collector tier a third of the way in, permanently; -chaos-link rA-rB
// flaps that inter-region link over the middle third:
//
//	remo-sim -nodes 30 -tasks 15 -regions 3 -chaos-region 1 -verify
//	remo-sim -nodes 20 -regions 2 -chaos-link r0-r1 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"remo"
	"remo/internal/lifecycle"
	"remo/internal/profiling"
	"remo/internal/workload"
)

func main() {
	// One signal stops at the next stage boundary (profiles still
	// flush); a second signal or the drain deadline force-exits.
	ctx, release := lifecycle.Context(context.Background(), lifecycle.Options{})
	defer release()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "remo-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("remo-sim", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "JSON problem spec (default: generate synthetically)")
		nodes    = fs.Int("nodes", 100, "synthetic: number of nodes")
		attrs    = fs.Int("attrs", 40, "synthetic: attribute pool size")
		tasks    = fs.Int("tasks", 50, "synthetic: number of tasks")
		scheme   = fs.String("scheme", "remo", "tree scheme for planning: remo, star, chain")
		rounds   = fs.Int("rounds", 30, "collection rounds to emulate")
		seed     = fs.Int64("seed", 1, "random seed")
		useTCP   = fs.Bool("tcp", false, "run the overlay over loopback TCP")
		traceN   = fs.Int("trace", 0, "dump up to N emulation events (0 = off)")
		verifyOn = fs.Bool("verify", false, "arm the verification harness: cross-check the plan, every repair, and the emulation results")

		chaosFrac  = fs.Float64("chaos", 0, "self-healing demo: crash this fraction of nodes mid-run")
		chaosDrop  = fs.Float64("chaos-drop", 0, "drop each message with this probability")
		chaosDelay = fs.Float64("chaos-delay", 0, "delay each message one round with this probability")
		suspicion  = fs.Int("suspicion", 3, "failure-detector suspicion window in rounds")

		regions     = fs.Int("regions", 1, "synthetic: cut the nodes into this many WAN regions (collector in r0, inter-region edges priced at the WAN default)")
		chaosRegion = fs.Int("chaos-region", -1, "partition this region from the collector tier a third of the way in, permanently (-1 = off; requires -regions >= 2)")
		chaosLink   = fs.String("chaos-link", "", "flap this inter-region link (e.g. r0-r1) over the middle third of the run (requires -regions >= 2)")
		regionFloor = fs.Float64("region-floor", 90, "coverage floor every surviving region must hold after the run (machine-checked when -regions > 1; 0 disables)")

		predictOn   = fs.Bool("predict", false, "arm forecast-driven dead-band traffic suppression (switches ground truth to a plateau workload)")
		predictEps  = fs.Float64("predict-eps", 0.01, "suppression error bound as a relative fraction (requires -predict)")
		predictSync = fs.Int("predict-sync", 0, "periodic model re-sync cadence in rounds, 0 = library default (requires -predict)")

		journalDir = fs.String("journal", "", "journal directory: checkpoint and WAL the session for crash recovery")
		collCrash  = fs.Int("chaos-collector", 0, "crash the central collector at this round and resume it from -journal (0 = off)")
		shards     = fs.Int("shards", 1, "run the collection tier as this many collector shards behind a leader-elected dispatcher")
		shardCrash = fs.Int("chaos-shard", -1, "crash this collector shard a third of the way in and resume it from its journal (-1 = off)")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(fs, *rounds, *suspicion, *journalDir, *collCrash, *shards, *shardCrash, *predictOn, *predictEps, *predictSync); err != nil {
		return err
	}
	if err := validateRegionFlags(fs, *specPath, *regions, *chaosRegion, *chaosLink, *regionFloor); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "remo-sim:", err)
		}
	}()

	var extraOpts []remo.PlannerOption
	if *predictOn {
		extraOpts = append(extraOpts, remo.WithPrediction(*predictEps))
	}
	planner, err := buildPlanner(*specPath, *nodes, *attrs, *tasks, *regions, *seed, *scheme, *verifyOn, extraOpts...)
	if err != nil {
		return err
	}
	if *predictOn && *predictSync > 0 {
		if err := planner.SetPredictionSync(*predictSync); err != nil {
			return err
		}
	}
	// Suppression thrives on utilization-style plateau dynamics; the
	// default bursty generator would defeat a tight band.
	var source remo.ValueSource
	if *predictOn {
		source = remo.UtilWalk{Seed: uint64(*seed)}
	}
	plan, err := planner.Plan()
	if err != nil {
		return err
	}
	if err := plan.Describe(stdout); err != nil {
		return err
	}

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("interrupted before the emulation started: %w", err)
	}

	var rec *remo.TraceRecorder
	if *traceN > 0 {
		rec = remo.NewTraceRecorder(*traceN)
	}
	var rep remo.DeployReport
	var regionCov map[string]float64
	if *chaosFrac > 0 || *chaosDrop > 0 || *chaosDelay > 0 || *journalDir != "" || *shards > 1 ||
		*regions > 1 {
		rep, regionCov, err = runChaos(planner, chaosOpts{
			rounds:      *rounds,
			useTCP:      *useTCP,
			seed:        uint64(*seed),
			frac:        *chaosFrac,
			dropProb:    *chaosDrop,
			delayProb:   *chaosDelay,
			suspicion:   *suspicion,
			journal:     *journalDir,
			collCrash:   *collCrash,
			shards:      *shards,
			shardCrash:  *shardCrash,
			regions:     *regions,
			chaosRegion: *chaosRegion,
			chaosLink:   *chaosLink,
			regionFloor: *regionFloor,
			trace:       rec,
			verify:      *verifyOn,
			source:      source,
		}, stdout)
	} else {
		rep, err = plan.Deploy(remo.DeployConfig{
			Rounds: *rounds,
			UseTCP: *useTCP,
			Seed:   uint64(*seed),
			Trace:  rec,
			Source: source,
		})
	}
	if err != nil {
		return err
	}
	if *verifyOn {
		fmt.Fprintln(stdout, "verification: plan invariants, repairs and results cross-checked OK")
	}
	fmt.Fprintf(stdout, "emulation: %d rounds over %s\n", rep.Rounds, transportName(*useTCP))
	fmt.Fprintf(stdout, "  coverage:        %d/%d pairs (%.1f%% of observations)\n",
		rep.CoveredPairs, rep.DemandedPairs, rep.PercentCollected)
	fmt.Fprintf(stdout, "  avg %% error:     %.2f%%\n", rep.AvgPercentError)
	fmt.Fprintf(stdout, "  avg staleness:   %.2f rounds\n", rep.AvgStaleness)
	fmt.Fprintf(stdout, "  traffic:         %d messages sent, %d dropped, %d values delivered\n",
		rep.MessagesSent, rep.MessagesDropped, rep.ValuesDelivered)
	if *predictOn {
		suppPct := 0.0
		if rep.ValuesObserved > 0 {
			suppPct = 100 * float64(rep.ValuesSuppressed) / float64(rep.ValuesObserved)
		}
		fmt.Fprintf(stdout, "  suppression:     %d/%d values elided (%.1f%%), %d imputed, %d model syncs, %d markers lost, band use %.3f\n",
			rep.ValuesSuppressed, rep.ValuesObserved, suppPct,
			rep.ValuesImputed, rep.ModelSyncs, rep.MarkersLost, rep.ImputeBandMax)
	}
	if rep.CollectorRestarts > 0 || rep.FramesBuffered > 0 || rep.StaleEpochFrames > 0 {
		fmt.Fprintf(stdout, "durability: %d collector restart(s); %d frames buffered (%d redelivered, %d shed); %d stale-epoch frames fenced\n",
			rep.CollectorRestarts, rep.FramesBuffered, rep.FramesRedelivered, rep.FramesShed, rep.StaleEpochFrames)
	}
	if rep.Shards > 0 {
		fmt.Fprintf(stdout, "sharding: %d shards (%d down), leader elections: %d, trees orphaned: %d, re-dispatched: %d\n",
			rep.Shards, rep.ShardsDown, rep.LeaderElections, rep.OrphanedTrees, rep.TreesRedispatched)
		for _, ev := range rep.Redispatches {
			fmt.Fprintf(stdout, "  r%03d re-home: tree %s shard %d -> %d\n",
				ev.Round, clipKey(ev.TreeKey), ev.FromShard, ev.ToShard)
		}
	}
	if regionCov != nil {
		names := make([]string, 0, len(regionCov))
		for r := range regionCov {
			names = append(names, r)
		}
		sort.Strings(names)
		if *regionFloor > 0 {
			fmt.Fprintf(stdout, "regions: %d, coverage floor %.0f%% held on every surviving region\n",
				len(names), *regionFloor)
		} else {
			fmt.Fprintf(stdout, "regions: %d (floor check disabled)\n", len(names))
		}
		for _, r := range names {
			fmt.Fprintf(stdout, "  %-4s %.1f%%\n", r, regionCov[r])
		}
	}
	if rep.FailuresDetected > 0 || rep.NodesRecovered > 0 {
		fmt.Fprintf(stdout, "self-healing: %d failures detected, %d nodes recovered, %d repair actions\n",
			rep.FailuresDetected, rep.NodesRecovered, len(rep.Repairs))
		for _, ev := range rep.Repairs {
			if len(ev.Failed) > 0 {
				fmt.Fprintf(stdout, "  r%03d repair: failed=%v detection=%d rounds, %d trees rebuilt, %d edges changed, coverage %.1f%%\n",
					ev.Round, ev.Failed, ev.DetectionRounds, ev.TreesRebuilt, ev.EdgesChanged, ev.CoverageAfter)
			}
			if len(ev.Recovered) > 0 {
				fmt.Fprintf(stdout, "  r%03d reintegrate: recovered=%v coverage %.1f%%\n",
					ev.Round, ev.Recovered, ev.CoverageAfter)
			}
		}
	}
	if rec != nil {
		fmt.Fprintln(stdout, "trace:")
		if err := rec.Dump(stdout); err != nil {
			return err
		}
	}
	return nil
}

// validateFlags rejects flag combinations that would silently do
// nothing (explicitly-zero chaos rates), cannot work (a suspicion
// window shorter than one round), or contradict each other (a collector
// crash with no journal to resume from).
func validateFlags(fs *flag.FlagSet, rounds, suspicion int, journalDir string, collCrash, shards, shardCrash int, predictOn bool, predictEps float64, predictSync int) error {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if rounds < 1 {
		return fmt.Errorf("-rounds must be at least 1 (got %d)", rounds)
	}
	if suspicion < 1 {
		return fmt.Errorf("-suspicion must be at least 1 round (got %d): the failure detector needs a positive silence window", suspicion)
	}
	for _, name := range []string{"chaos", "chaos-drop", "chaos-delay"} {
		if !set[name] {
			continue
		}
		f := fs.Lookup(name)
		v, err := strconv.ParseFloat(f.Value.String(), 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("-%s must be a rate in (0, 1] (got %s): pass a positive fraction or omit the flag", name, f.Value.String())
		}
	}
	if set["chaos-collector"] {
		if collCrash < 1 {
			return fmt.Errorf("-chaos-collector must name a round of at least 1 (got %d)", collCrash)
		}
		if collCrash >= rounds {
			return fmt.Errorf("-chaos-collector round %d must fall inside the %d-round run", collCrash, rounds)
		}
		if journalDir == "" {
			return fmt.Errorf("-chaos-collector requires -journal: a crashed collector can only resume from its journal")
		}
		if shards > 1 {
			return fmt.Errorf("-chaos-collector targets the single central collector; a sharded tier's root never dies (use -chaos-shard)")
		}
	}
	if set["shards"] && shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", shards)
	}
	if set["predict-eps"] && !predictOn {
		return fmt.Errorf("-predict-eps requires -predict: the bound only applies once suppression is armed")
	}
	if set["predict-sync"] && !predictOn {
		return fmt.Errorf("-predict-sync requires -predict: the re-sync cadence only applies once suppression is armed")
	}
	if predictOn && (predictEps <= 0 || predictEps > 1) {
		return fmt.Errorf("-predict-eps must be a relative fraction in (0, 1] (got %v)", predictEps)
	}
	if predictOn && set["predict-sync"] && predictSync < 1 {
		return fmt.Errorf("-predict-sync must be at least 1 round (got %d)", predictSync)
	}
	if set["chaos-shard"] {
		if shards < 2 {
			return fmt.Errorf("-chaos-shard requires -shards of at least 2: a single-collector session has no shard to crash")
		}
		if shardCrash < 0 || shardCrash >= shards {
			return fmt.Errorf("-chaos-shard %d must name a shard in [0, %d)", shardCrash, shards)
		}
		if journalDir == "" {
			return fmt.Errorf("-chaos-shard requires -journal: a crashed shard can only resume from its journal")
		}
	}
	return nil
}

// validateRegionFlags rejects WAN-topology flag combinations that
// cannot work: zero/negative region counts, a partitioned region index
// outside the labeled range, or a link flap without at least two
// regions to string a link between.
func validateRegionFlags(fs *flag.FlagSet, specPath string, regions, chaosRegion int, chaosLink string, regionFloor float64) error {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if set["regions"] {
		if regions < 1 {
			return fmt.Errorf("-regions must be at least 1 (got %d): a WAN has no zero-region cut", regions)
		}
		if specPath != "" {
			return fmt.Errorf("-regions only applies to the synthetic generator: spec files carry their own region labels")
		}
	}
	if set["chaos-region"] {
		if regions < 2 {
			return fmt.Errorf("-chaos-region requires -regions of at least 2: a single-region cluster has no region to partition")
		}
		if chaosRegion < 0 || chaosRegion >= regions {
			return fmt.Errorf("-chaos-region %d must name a region in [0, %d)", chaosRegion, regions)
		}
	}
	if set["chaos-link"] {
		if regions < 2 {
			return fmt.Errorf("-chaos-link requires -regions of at least 2: an inter-region link needs two regions")
		}
		a, b, err := parseRegionLink(chaosLink)
		if err != nil {
			return err
		}
		if a >= regions || b >= regions {
			return fmt.Errorf("-chaos-link %q names a region outside [0, %d)", chaosLink, regions)
		}
	}
	if set["region-floor"] {
		if regions < 2 {
			return fmt.Errorf("-region-floor requires -regions of at least 2: the floor is checked per region")
		}
		if regionFloor < 0 || regionFloor > 100 {
			return fmt.Errorf("-region-floor must be a percentage in [0, 100] (got %v)", regionFloor)
		}
	}
	return nil
}

// parseRegionLink parses an inter-region link spelled the way regions
// are named ("r0-r1") into its two region indices.
func parseRegionLink(s string) (a, b int, err error) {
	if n, serr := fmt.Sscanf(s, "r%d-r%d", &a, &b); serr != nil || n != 2 || a < 0 || b < 0 {
		return 0, 0, fmt.Errorf("-chaos-link %q must name two regions like r0-r1", s)
	}
	if a == b {
		return 0, 0, fmt.Errorf("-chaos-link %q joins a region to itself: name two distinct regions", s)
	}
	return a, b, nil
}

// chaosOpts parameterizes the self-healing demo session.
type chaosOpts struct {
	rounds      int
	useTCP      bool
	seed        uint64
	frac        float64
	dropProb    float64
	delayProb   float64
	suspicion   int
	journal     string
	collCrash   int
	shards      int
	shardCrash  int
	regions     int
	chaosRegion int
	chaosLink   string
	regionFloor float64
	trace       *remo.TraceRecorder
	verify      bool
	source      remo.ValueSource
}

// runChaos runs a self-healing live session: a fraction of nodes
// crashes a third of the way through the run and the Monitor detects
// and repairs around them. With a journal the session is durable, and
// with collCrash set the central collector itself crashes mid-run and
// is resumed from that journal. On a region-labeled system it also
// returns the per-region coverage map sampled after the run and
// enforces the surviving-region coverage floor.
func runChaos(planner *remo.Planner, o chaosOpts, stdout io.Writer) (remo.DeployReport, map[string]float64, error) {
	crashRound := o.rounds / 3
	if crashRound < 1 {
		crashRound = 1
	}
	cc := &remo.ChaosConfig{
		DropProb:       o.dropProb,
		MaxDelayRounds: 1,
		DelayProb:      o.delayProb,
		Seed:           o.seed,
	}
	if o.chaosRegion >= 0 {
		// A permanent partition: the region stays cut to the end, so the
		// run finishes on the repaired, re-homed topology.
		cc.RegionPartitions = map[string][]remo.ChaosWindow{
			remo.RegionName(o.chaosRegion): {{From: crashRound, To: o.rounds + 1}},
		}
	}
	if o.chaosLink != "" {
		// A flap over the middle third: the link drops, the far side is
		// declared dead and repaired around, then reintegrates.
		a, b, err := parseRegionLink(o.chaosLink)
		if err != nil {
			return remo.DeployReport{}, nil, err
		}
		cc.LinkFlaps = map[remo.ChaosRegionLink][]remo.ChaosWindow{
			remo.ChaosNormLink(remo.RegionName(a), remo.RegionName(b)): {
				{From: crashRound, To: 2 * o.rounds / 3},
			},
		}
	}
	if o.frac > 0 {
		ids := planner.System().NodeIDs()
		kill := int(o.frac * float64(len(ids)))
		if kill < 1 {
			kill = 1
		}
		if kill > len(ids) {
			kill = len(ids)
		}
		cc.CrashAt = make(map[remo.NodeID]int, kill)
		// Kill every len/kill-th node for an even spread across trees.
		stride := len(ids) / kill
		for i := 0; i < kill; i++ {
			cc.CrashAt[ids[i*stride]] = crashRound
		}
	}
	if o.collCrash > 0 {
		cc.CollectorCrashAt = o.collCrash
	}
	if o.shardCrash >= 0 {
		cc.ShardCrashAt = map[int]int{o.shardCrash: crashRound}
	}
	mon, err := planner.StartMonitor(remo.MonitorConfig{
		UseTCP:  o.useTCP,
		Seed:    o.seed,
		Source:  o.source,
		Chaos:   cc,
		Failure: &remo.FailurePolicy{SuspicionRounds: o.suspicion},
		Trace:   o.trace,
		Journal: o.journal,
		Shards:  o.shards,
	})
	if err != nil {
		return remo.DeployReport{}, nil, err
	}
	defer func() { _ = mon.Close() }()

	if o.shardCrash >= 0 {
		// Ride out the shard outage past the suspicion window, so the
		// death is declared and the orphaned trees re-dispatched onto the
		// survivors, then resume the shard from its own journal and finish
		// the run.
		rideOut := crashRound + o.suspicion + 3
		if rideOut > o.rounds {
			rideOut = o.rounds
		}
		if err := mon.Run(rideOut); err != nil {
			return remo.DeployReport{}, nil, err
		}
		rr, err := mon.ResumeShard(o.shardCrash)
		if err != nil {
			return remo.DeployReport{}, nil, err
		}
		fmt.Fprintf(stdout, "shard %d crashed at round %d; resumed from its journal: epoch %d, %d samples through round %d, plan matched: %v\n",
			o.shardCrash, crashRound, rr.Epoch, rr.RecoveredSamples, rr.RecoveredRound, rr.PlanMatched)
		if err := mon.Run(o.rounds - rideOut); err != nil {
			return remo.DeployReport{}, nil, err
		}
	} else if o.collCrash > 0 {
		// Ride out a short outage past the crash (leaves buffer their
		// values meanwhile), then resume the collector from the journal
		// and finish the run on the recovered state.
		outage := o.collCrash + 2
		if outage > o.rounds {
			outage = o.rounds
		}
		if err := mon.Run(outage); err != nil {
			return remo.DeployReport{}, nil, err
		}
		rr, err := mon.Resume(o.journal)
		if err != nil {
			return remo.DeployReport{}, nil, err
		}
		fmt.Fprintf(stdout, "collector crashed at round %d; resumed from journal: epoch %d, %d samples through round %d, %d WAL records replayed, plan matched: %v\n",
			o.collCrash, rr.Epoch, rr.RecoveredSamples, rr.RecoveredRound, rr.ReplayedRecords, rr.PlanMatched)
		if err := mon.Run(o.rounds - outage); err != nil {
			return remo.DeployReport{}, nil, err
		}
	} else if err := mon.Run(o.rounds); err != nil {
		return remo.DeployReport{}, nil, err
	}
	if o.verify {
		if err := mon.Verify(); err != nil {
			return remo.DeployReport{}, nil, err
		}
	}
	var regionCov map[string]float64
	if o.regions > 1 {
		regionCov = mon.RegionCoverage()
		if o.regionFloor > 0 {
			if err := mon.VerifyRegionCoverage(o.regionFloor); err != nil {
				return remo.DeployReport{}, nil, err
			}
		}
	}
	return mon.Report(), regionCov, nil
}

func transportName(tcp bool) string {
	if tcp {
		return "loopback TCP"
	}
	return "in-process transport"
}

// clipKey shortens a long tree key (a comma-joined attribute set) for
// one-line event output.
func clipKey(k string) string {
	const max = 24
	if len(k) <= max {
		return k
	}
	return k[:max] + "…"
}

// buildPlanner assembles the planning problem from a spec file or the
// synthetic generator. regions > 1 cuts the synthetic nodes into
// contiguous WAN regions (collector in r0) and prices inter-region
// edges at the library default, so planning and verification charge the
// real WAN price.
func buildPlanner(specPath string, nodes, attrs, tasks, regions int, seed int64, scheme string, verifyOn bool, extra ...remo.PlannerOption) (*remo.Planner, error) {
	opt, err := schemeOption(scheme)
	if err != nil {
		return nil, err
	}
	opts := []remo.PlannerOption{opt}
	if verifyOn {
		opts = append(opts, remo.WithVerification())
	}
	opts = append(opts, extra...)

	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		spec, err := remo.LoadSpec(f)
		if err != nil {
			return nil, err
		}
		return spec.Build(opts...)
	}

	sys, err := workload.System(workload.SystemConfig{
		Nodes:      nodes,
		Attrs:      attrs,
		CapacityLo: 150,
		CapacityHi: 400,
		Regions:    regions,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	planner := remo.NewPlanner(sys, opts...)
	for _, t := range workload.Tasks(sys, workload.TaskConfig{
		Count:        tasks,
		AttrsPerTask: 8,
		NodesPerTask: maxInt(4, nodes/5),
		Seed:         seed + 1,
	}) {
		if err := planner.AddTask(t); err != nil {
			return nil, err
		}
	}
	return planner, nil
}

func schemeOption(scheme string) (remo.PlannerOption, error) {
	switch scheme {
	case "remo", "adaptive":
		return remo.WithTreeScheme(remo.TreeAdaptive), nil
	case "star":
		return remo.WithTreeScheme(remo.TreeStar), nil
	case "chain":
		return remo.WithTreeScheme(remo.TreeChain), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q (remo, star, chain)", scheme)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
