// Command remo-plan plans a monitoring topology from a JSON problem
// spec and prints the resulting forest.
//
// Usage:
//
//	remo-plan -spec problem.json [-tree ADAPTIVE] [-alloc ORDERED] [-edges]
//	cat problem.json | remo-plan
//
// The spec format (see the remo.Spec type):
//
//	{
//	  "centralCapacity": 500,
//	  "perMessage": 10, "perValue": 1,
//	  "nodes": [{"id": 1, "capacity": 100, "attrs": [1, 2]}, ...],
//	  "tasks": [{"name": "cpu", "attrs": [1], "nodes": [1, 2], "replicas": 1}, ...]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"remo"
	"remo/internal/alloc"
	"remo/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "remo-plan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("remo-plan", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "path to the JSON problem spec (default: stdin)")
		treeScheme = fs.String("tree", string(tree.Adaptive), "tree scheme: ADAPTIVE, STAR, CHAIN, MAX_AVB")
		allocPlan  = fs.String("alloc", string(alloc.Ordered), "allocation: ORDERED, ON-DEMAND, UNIFORM, PROPORTIONAL")
		edges      = fs.Bool("edges", false, "print every parent link")
		missed     = fs.Bool("missed", false, "print missed node-attribute pairs")
		exportPath = fs.String("export", "", "write the planned topology as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		in = f
	}
	spec, err := remo.LoadSpec(in)
	if err != nil {
		return err
	}
	planner, err := spec.Build(
		remo.WithTreeScheme(tree.Scheme(*treeScheme)),
		remo.WithAllocScheme(alloc.Scheme(*allocPlan)),
	)
	if err != nil {
		return err
	}
	raw, distinct := planner.DedupStats()
	fmt.Fprintf(stdout, "tasks: %d, node-attribute pairs: %d raw, %d after dedup\n",
		len(planner.Tasks()), raw, distinct)

	plan, err := planner.Plan()
	if err != nil {
		return err
	}
	if err := plan.Describe(stdout); err != nil {
		return err
	}
	if *edges {
		for _, info := range plan.Trees() {
			for _, a := range info.Attrs[:1] { // one attr identifies the tree
				fmt.Fprintf(stdout, "tree %v:\n", info.Attrs)
				printEdges(stdout, plan, a, info.Root, 1)
			}
		}
	}
	if *missed {
		for _, p := range plan.MissedPairs() {
			fmt.Fprintf(stdout, "missed: %v\n", p)
		}
	}
	if *exportPath != "" {
		f, err := os.Create(*exportPath)
		if err != nil {
			return err
		}
		if err := plan.Export(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "exported topology to %s\n", *exportPath)
	}
	return nil
}

// printEdges walks one tree depth-first from the root.
func printEdges(w io.Writer, plan *remo.Plan, attr remo.AttrID, node remo.NodeID, depth int) {
	for _, child := range planChildren(plan, attr, node) {
		fmt.Fprintf(w, "%*s%v -> %v\n", depth*2, "", child, node)
		printEdges(w, plan, attr, child, depth+1)
	}
}

// planChildren recovers children from ParentOf queries over the system's
// nodes (the public API exposes parent links only).
func planChildren(plan *remo.Plan, attr remo.AttrID, parent remo.NodeID) []remo.NodeID {
	var out []remo.NodeID
	for _, n := range planNodes(plan) {
		if p, ok := plan.ParentOf(n, attr); ok && p == parent {
			out = append(out, n)
		}
	}
	return out
}

func planNodes(plan *remo.Plan) []remo.NodeID {
	usage := plan.NodeUsage()
	out := make([]remo.NodeID, 0, len(usage))
	for n := range usage {
		out = append(out, n)
	}
	return out
}
