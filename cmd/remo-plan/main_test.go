package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSpec = `{
	"centralCapacity": 500,
	"perMessage": 10,
	"perValue": 1,
	"nodes": [
		{"id": 1, "capacity": 120},
		{"id": 2, "capacity": 120},
		{"id": 3, "capacity": 120}
	],
	"tasks": [
		{"name": "cpu", "attrs": [1], "nodes": [1, 2, 3]},
		{"name": "mem", "attrs": [2], "nodes": [1, 2]}
	]
}`

func TestRunFromStdin(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(testSpec), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"tasks: 2", "5 raw, 5 after dedup", "pairs collected"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestRunFromFileWithEdges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(testSpec), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-spec", path, "-edges", "-missed"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "->") {
		t.Errorf("no edges printed:\n%s", out.String())
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(`{"bogus": true}`), &out); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", "/nonexistent.json"}, nil, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunWithSchemeFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-tree", "STAR"},
		{"-tree", "CHAIN", "-alloc", "UNIFORM"},
	} {
		var out strings.Builder
		if err := run(args, strings.NewReader(testSpec), &out); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunExportsTopology(t *testing.T) {
	out := filepath.Join(t.TempDir(), "plan.json")
	var sb strings.Builder
	if err := run([]string{"-export", out}, strings.NewReader(testSpec), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"trees\"") {
		t.Fatalf("export = %s", data)
	}
}
