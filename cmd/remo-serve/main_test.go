package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter is a race-safe strings.Builder: run() writes from the
// test goroutine while the test polls for the listening line.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+) `)

// startServe boots run() on a free port and returns the base URL, the
// cancel that triggers the drain, and the run error channel.
func startServe(t *testing.T, out *syncWriter, extra ...string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-nodes", "10", "-attrs", "4", "-tasks", "3",
		"-journal", t.TempDir(),
		"-round-every", "5ms",
	}, extra...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1], cancel, errCh
		}
		select {
		case err := <-errCh:
			t.Fatalf("run exited before listening: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no listening line:\n%s", out.String())
	return "", nil, nil
}

// TestServeAndDrain boots the daemon, confirms the API answers, and
// drains it through context cancellation (the signal path's effect).
func TestServeAndDrain(t *testing.T) {
	out := &syncWriter{}
	base, cancel, errCh := startServe(t, out, "-verify")

	for _, path := range []string{"/healthz", "/v1/system", "/v1/plan", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain hung:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{"draining:", "drained: session journaled under"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

// TestServeAdmission drives one admission through the running daemon.
func TestServeAdmission(t *testing.T) {
	out := &syncWriter{}
	base, cancel, errCh := startServe(t, out)
	defer func() { cancel(); <-errCh }()

	resp, err := http.Post(base+"/v1/tasks", "application/json",
		strings.NewReader(`{"name":"probe","attrs":[1],"nodes":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admission status %d: %s", resp.StatusCode, body)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero nodes", []string{"-nodes", "0"}, "-nodes must be at least 1"},
		{"zero attrs", []string{"-attrs", "0"}, "-attrs must be at least 1"},
		{"negative tasks", []string{"-tasks", "-1"}, "-tasks must be non-negative"},
		{"zero pacing", []string{"-round-every", "0s"}, "-round-every must be positive"},
		{"zero body cap", []string{"-max-body", "0"}, "-max-body must be at least 1"},
		{"missing spec", []string{"-spec", "/nonexistent/spec.json"}, "no such file"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(context.Background(), tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
