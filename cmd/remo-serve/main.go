// Command remo-serve runs the monitoring stack as a long-running
// service: it plans a synthetic (or spec-loaded) deployment, starts a
// durable Monitor session, and exposes the admission, inspection, and
// streaming API over HTTP/JSON.
//
// Usage:
//
//	remo-serve -addr 127.0.0.1:7300
//	remo-serve -nodes 60 -attrs 24 -tasks 20 -journal /var/lib/remo
//	remo-serve -spec problem.json -verify -round-every 100ms
//
// The service follows a frontend/backend split: task mutations (POST,
// PUT, DELETE under /v1/tasks) validate synchronously against the
// admission budget and return 202 with an asynchronous operation to
// poll; a single backend goroutine materializes the desired task set
// between collection rounds, driving the incremental replanner. Store
// values and trigger firings stream over SSE at /v1/stream; /metrics
// exposes Prometheus-style counters; /healthz answers liveness.
//
// On SIGINT/SIGTERM the server drains: in-flight admissions are
// applied, a final checkpoint is journaled, and the process exits.
// A second signal (or an expired -drain-deadline) force-exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"remo"
	"remo/internal/lifecycle"
	"remo/internal/serve"
	"remo/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "remo-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("remo-serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7300", "listen address (port 0 picks a free port)")
		specPath = fs.String("spec", "", "JSON problem spec (default: generate synthetically)")
		nodes    = fs.Int("nodes", 60, "synthetic: number of nodes")
		attrs    = fs.Int("attrs", 24, "synthetic: attribute pool size")
		tasks    = fs.Int("tasks", 12, "synthetic: number of seed tasks")
		seed     = fs.Int64("seed", 1, "random seed")
		verifyOn = fs.Bool("verify", false, "arm the verification harness: cross-check the plan and the live session periodically")

		journalDir = fs.String("journal", "", "journal directory for checkpoints and the WAL (default: a fresh temp dir)")
		roundEvery = fs.Duration("round-every", 50*time.Millisecond, "collection round pacing")
		verifyEv   = fs.Int("verify-every", 32, "with -verify, cross-check the session every n rounds")
		maxBody    = fs.Int64("max-body", 1<<20, "maximum request body size in bytes")
		drainDl    = fs.Duration("drain-deadline", lifecycle.DefaultDrainDeadline, "force-exit if a signal-triggered drain outlives this (negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(*nodes, *attrs, *tasks, *roundEvery, *maxBody); err != nil {
		return err
	}

	journal := *journalDir
	if journal == "" {
		dir, err := os.MkdirTemp("", "remo-serve-journal-")
		if err != nil {
			return fmt.Errorf("create journal dir: %w", err)
		}
		journal = dir
	}

	planner, err := buildPlanner(*specPath, *nodes, *attrs, *tasks, *seed, *verifyOn)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Planner: planner,
		Monitor: remo.MonitorConfig{
			Seed:    uint64(*seed),
			Journal: journal,
		},
		RoundEvery:   *roundEvery,
		MaxBodyBytes: *maxBody,
		VerifyEvery:  *verifyEv,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Drain()
		return err
	}
	fmt.Fprintf(stdout, "remo-serve listening on http://%s (journal %s)\n", ln.Addr(), journal)

	ctx, release := lifecycle.Context(ctx, lifecycle.Options{DrainDeadline: *drainDl})
	defer release()

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		srv.Drain()
		return err
	case <-ctx.Done():
	}

	// Drain order matters: srv.Drain applies queued operations, seals the
	// final checkpoint, and disconnects stream subscribers — which lets
	// hs.Shutdown's idle-connection wait complete.
	fmt.Fprintln(stdout, "draining: applying queued operations and sealing the final checkpoint")
	srv.Drain()
	shutCtx := context.Background()
	if *drainDl > 0 {
		var cancel context.CancelFunc
		shutCtx, cancel = context.WithTimeout(shutCtx, *drainDl)
		defer cancel()
	}
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	<-errCh // hs.Serve has returned http.ErrServerClosed
	fmt.Fprintf(stdout, "drained: session journaled under %s\n", journal)
	return nil
}

// validateFlags rejects configurations that cannot serve.
func validateFlags(nodes, attrs, tasks int, roundEvery time.Duration, maxBody int64) error {
	if nodes < 1 {
		return fmt.Errorf("-nodes must be at least 1 (got %d)", nodes)
	}
	if attrs < 1 {
		return fmt.Errorf("-attrs must be at least 1 (got %d)", attrs)
	}
	if tasks < 0 {
		return fmt.Errorf("-tasks must be non-negative (got %d)", tasks)
	}
	if roundEvery <= 0 {
		return fmt.Errorf("-round-every must be positive (got %v)", roundEvery)
	}
	if maxBody < 1 {
		return fmt.Errorf("-max-body must be at least 1 byte (got %d)", maxBody)
	}
	return nil
}

// buildPlanner assembles the planning problem from a spec file or the
// synthetic generator, mirroring remo-sim's setup path.
func buildPlanner(specPath string, nodes, attrs, tasks int, seed int64, verifyOn bool) (*remo.Planner, error) {
	var opts []remo.PlannerOption
	if verifyOn {
		opts = append(opts, remo.WithVerification())
	}
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		spec, err := remo.LoadSpec(f)
		if err != nil {
			return nil, err
		}
		return spec.Build(opts...)
	}
	sys, err := workload.System(workload.SystemConfig{
		Nodes:      nodes,
		Attrs:      attrs,
		CapacityLo: 150,
		CapacityHi: 400,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	planner := remo.NewPlanner(sys, opts...)
	nodesPer := nodes / 5
	if nodesPer < 2 {
		nodesPer = 2
	}
	for _, t := range workload.Tasks(sys, workload.TaskConfig{
		Count:        tasks,
		AttrsPerTask: 4,
		NodesPerTask: nodesPer,
		Seed:         seed + 1,
	}) {
		if err := planner.AddTask(t); err != nil {
			return nil, err
		}
	}
	return planner, nil
}
