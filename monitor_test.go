package remo_test

import (
	"testing"

	"remo"
)

func TestMonitorLiveAdaptation(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	ids := allNodes(sys)
	tasks := []remo.Task{{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: ids}}
	for _, task := range tasks {
		p.MustAddTask(task)
	}

	// REBUILD replans from scratch, so coverage assertions are exact;
	// the throttled schemes may defer marginal gains.
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 3, Scheme: remo.AdaptRebuild})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()

	if err := mon.Run(10); err != nil {
		t.Fatal(err)
	}
	mid := mon.Report()
	if mid.CoveredPairs != len(ids) {
		t.Fatalf("covered %d of %d before adaptation", mid.CoveredPairs, len(ids))
	}

	// Add a second task mid-flight.
	tasks = append(tasks, remo.Task{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: ids})
	rep, err := mon.SetTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CollectedPairs != 2*len(ids) {
		t.Fatalf("adapted plan collects %d, want %d", rep.CollectedPairs, 2*len(ids))
	}
	if err := mon.Run(10); err != nil {
		t.Fatal(err)
	}
	final := mon.Report()
	if final.Rounds != 20 {
		t.Fatalf("rounds = %d, want 20", final.Rounds)
	}
	if final.DemandedPairs != 2*len(ids) {
		t.Fatalf("demanded = %d, want %d", final.DemandedPairs, 2*len(ids))
	}
	if final.CoveredPairs != 2*len(ids) {
		t.Fatalf("covered %d of %d after adaptation", final.CoveredPairs, final.DemandedPairs)
	}
	// The live plan validates.
	if err := mon.Plan().Validate(); err != nil {
		t.Fatal(err)
	}
	// Error accounting spans the whole session.
	if len(final.ErrorSeries) != 20 {
		t.Fatalf("error series length = %d", len(final.ErrorSeries))
	}
}

func TestMonitorTaskRemovalShrinksDemand(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	ids := allNodes(sys)
	p.MustAddTask(remo.Task{Name: "a", Attrs: []remo.AttrID{1}, Nodes: ids})
	p.MustAddTask(remo.Task{Name: "b", Attrs: []remo.AttrID{2}, Nodes: ids})

	mon, err := p.StartMonitor(remo.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(5); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.SetTasks([]remo.Task{
		{Name: "a", Attrs: []remo.AttrID{1}, Nodes: ids},
	}); err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(5); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.DemandedPairs != len(ids) {
		t.Fatalf("demanded = %d after removal, want %d", rep.DemandedPairs, len(ids))
	}
}

func TestMonitorClosed(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "a", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	mon, err := p.StartMonitor(remo.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := mon.Run(1); err == nil {
		t.Fatal("Run on closed monitor succeeded")
	}
	if _, err := mon.SetTasks(nil); err == nil {
		t.Fatal("SetTasks on closed monitor succeeded")
	}
}

func TestMonitorOverTCP(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "a", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	mon, err := p.StartMonitor(remo.MonitorConfig{UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(6); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.MessagesSent == 0 || rep.CoveredPairs == 0 {
		t.Fatalf("TCP session: %+v", rep)
	}
}
