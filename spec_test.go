package remo_test

import (
	"strings"
	"testing"

	"remo"
)

func TestSpecNodesInheritTaskAttrs(t *testing.T) {
	const doc = `{
		"centralCapacity": 300,
		"perMessage": 10, "perValue": 1,
		"nodes": [{"id": 1, "capacity": 80}, {"id": 2, "capacity": 80}],
		"tasks": [{"name": "t", "attrs": [3, 7], "nodes": [1, 2]}]
	}`
	spec, err := remo.LoadSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Both nodes observe both referenced attributes.
	if plan.DemandedPairs() != 4 {
		t.Fatalf("demanded = %d, want 4", plan.DemandedPairs())
	}
}

func TestSpecReplicatedTask(t *testing.T) {
	const doc = `{
		"centralCapacity": 400,
		"perMessage": 10, "perValue": 1,
		"nodes": [
			{"id": 1, "capacity": 100}, {"id": 2, "capacity": 100},
			{"id": 3, "capacity": 100}, {"id": 4, "capacity": 100}
		],
		"tasks": [{"name": "crit", "attrs": [1], "nodes": [1, 2, 3, 4], "replicas": 2}]
	}`
	spec, err := remo.LoadSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Trees()) < 2 {
		t.Fatalf("replicated spec produced %d trees, want >= 2", len(plan.Trees()))
	}
}

func TestSpecRegionTopology(t *testing.T) {
	const doc = `{
		"centralCapacity": 400,
		"perMessage": 10, "perValue": 1,
		"centralRegion": "east",
		"interRegionCost": 6,
		"regionLinks": [{"a": "east", "b": "west", "cost": 3}],
		"nodes": [
			{"id": 1, "capacity": 100, "region": "east"},
			{"id": 2, "capacity": 100, "region": "west"},
			{"id": 3, "capacity": 100, "region": "apac"}
		],
		"tasks": [{"name": "t", "attrs": [1], "nodes": [1, 2, 3]}]
	}`
	spec, err := remo.LoadSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.RegionLinks) != 1 || spec.RegionLinks[0].B != "west" {
		t.Fatalf("region links decoded as %+v", spec.RegionLinks)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := p.System()
	if sys.CentralRegion != "east" {
		t.Fatalf("CentralRegion = %q, want east", sys.CentralRegion)
	}
	if got := sys.Dist(1, 1); got != 1 {
		t.Fatalf("intra Dist = %v, want 1", got)
	}
	if got := sys.Dist(2, 3); got != 6 {
		t.Fatalf("inter Dist = %v, want 6", got)
	}
	// The east-west link override also prices node 2's path to the
	// east-homed collector.
	if got := sys.Dist(2, remo.CentralNode); got != 3 {
		t.Fatalf("overridden Dist = %v, want 3", got)
	}
	// Plans built from the spec verify against the topology prices.
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{
			name: "duplicate node",
			doc: `{"centralCapacity": 10, "perMessage": 1, "perValue": 1,
				"nodes": [{"id": 1, "capacity": 5}, {"id": 1, "capacity": 5}],
				"tasks": [{"name": "t", "attrs": [1], "nodes": [1]}]}`,
		},
		{
			name: "bad cost model",
			doc: `{"centralCapacity": 10, "perMessage": 0, "perValue": 0,
				"nodes": [{"id": 1, "capacity": 5}],
				"tasks": [{"name": "t", "attrs": [1], "nodes": [1]}]}`,
		},
		{
			name: "nameless task",
			doc: `{"centralCapacity": 10, "perMessage": 1, "perValue": 1,
				"nodes": [{"id": 1, "capacity": 5}],
				"tasks": [{"attrs": [1], "nodes": [1]}]}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := remo.LoadSpec(strings.NewReader(tc.doc))
			if err != nil {
				return // rejected at decode: also fine
			}
			if _, err := spec.Build(); err == nil {
				t.Fatalf("bad spec accepted")
			}
		})
	}
}
