// Benchmarks regenerating every figure of the paper's evaluation (§7)
// plus micro-benchmarks of the planner's hot paths. Figure benchmarks
// run the corresponding internal/bench experiment at reduced scale and
// report the headline series values as custom metrics; run
// cmd/remo-bench for full-scale tables.
package remo_test

import (
	"bytes"
	"fmt"
	"testing"

	"remo"
	"remo/internal/bench"
	"remo/internal/cluster"
	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/task"
	"remo/internal/transport"
	"remo/internal/workload"
)

// benchOpts shrinks the sweeps so a figure regenerates in seconds.
var benchOpts = bench.Options{Scale: 0.12, Seed: 3, Rounds: 10}

// reportColumnMeans attaches each column's mean as a custom metric.
func reportColumnMeans(b *testing.B, tables []*metrics.Table) {
	b.Helper()
	for ti, tbl := range tables {
		for _, col := range tbl.Columns {
			series, ok := tbl.Column(col)
			if !ok {
				b.Fatalf("missing column %q", col)
			}
			b.ReportMetric(metrics.Mean(series), fmt.Sprintf("t%d_%s", ti, sanitize(col)))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func benchFigure(b *testing.B, name string) {
	exp, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		tables = exp.Run(benchOpts)
	}
	reportColumnMeans(b, tables)
}

// BenchmarkFig2MessageOverhead regenerates the cost-model calibration
// (Fig. 2): per-message overhead dominates per-value cost.
func BenchmarkFig2MessageOverhead(b *testing.B) { benchFigure(b, "fig2") }

// BenchmarkFig5PartitionWorkload regenerates Fig. 5 (partition schemes
// vs workload characteristics, panels a-d).
func BenchmarkFig5PartitionWorkload(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6PartitionSystem regenerates Fig. 6 (partition schemes vs
// system characteristics, panels a-d).
func BenchmarkFig6PartitionSystem(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7TreeSchemes regenerates Fig. 7 (tree construction
// schemes, panels a-d).
func BenchmarkFig7TreeSchemes(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8PercentError regenerates Fig. 8 (average percentage error
// on the emulated stream system, panels a-b).
func BenchmarkFig8PercentError(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9Adaptation regenerates Fig. 9 (adaptation schemes under
// churn, panels a-d).
func BenchmarkFig9Adaptation(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10TreeOptSpeedup regenerates Fig. 10 (adjusting-procedure
// optimizations, panels a-b).
func BenchmarkFig10TreeOptSpeedup(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11Allocation regenerates Fig. 11 (capacity allocation
// schemes, panels a-b).
func BenchmarkFig11Allocation(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12Extensions regenerates Fig. 12 (aggregation/frequency
// awareness and replication, panels a-b).
func BenchmarkFig12Extensions(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkAblations regenerates the search-design ablation tables.
func BenchmarkAblations(b *testing.B) { benchFigure(b, "ablations") }

// BenchmarkPlannerChurn regenerates the incremental-replanning churn
// experiment (plan-update latency vs task arrival rate); the name keeps
// it inside scripts/check.sh's 'BenchmarkPlanner' one-iteration smoke.
func BenchmarkPlannerChurn(b *testing.B) { benchFigure(b, "churn") }

// BenchmarkSuppress regenerates the forecast-suppression experiment
// (wire bytes at accuracy, plus fault robustness); scripts/check.sh
// runs it one-shot as the suppression smoke and gates the recorded
// headline in BENCH_suppress.json via benchguard -suppress.
func BenchmarkSuppress(b *testing.B) { benchFigure(b, "suppress") }

// BenchmarkRegion regenerates the WAN-topology experiment (cross-region
// bytes blind vs aware, coverage floor through a region loss);
// scripts/check.sh runs it one-shot as the region smoke and gates the
// recorded headline in BENCH_region.json via benchguard -region.
func BenchmarkRegion(b *testing.B) { benchFigure(b, "region") }

// --- Micro-benchmarks -------------------------------------------------

// benchEnv builds a reusable planning environment.
func benchEnv(b *testing.B, nodes, attrs, tasks int) (*model.System, *core.Planner, func() *remo.Planner) {
	b.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes: nodes, Attrs: attrs, CapacityLo: 150, CapacityHi: 400, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	taskList := workload.Tasks(sys, workload.TaskConfig{
		Count: tasks, AttrsPerTask: 6, NodesPerTask: nodes / 5, Seed: 6,
	})
	mk := func() *remo.Planner {
		p := remo.NewPlanner(sys)
		for _, t := range taskList {
			if err := p.AddTask(t); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	return sys, core.NewPlanner(), mk
}

// BenchmarkPlannerPlan measures the full REMO planning pipeline.
func BenchmarkPlannerPlan(b *testing.B) {
	_, _, mk := benchEnv(b, 40, 15, 20)
	p := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// fig6aEnv is the largest Fig. 6a point (400 nodes, 150 small tasks):
// the acceptance workload for the parallel-planner speedup comparison.
func fig6aEnv(b *testing.B) (*model.System, *task.Demand) {
	b.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes:           400,
		Attrs:           100,
		CapacityLo:      150,
		CapacityHi:      400,
		CentralCapacity: 4800,
		Cost:            cost.Model{PerMessage: 10, PerValue: 1},
		Seed:            9,
	})
	if err != nil {
		b.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 150, AttrsPerTask: 3, NodesPerTask: 40, Seed: 16,
	})
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		b.Fatal(err)
	}
	return sys, d
}

// BenchmarkPlannerSequential times the pre-parallel planner (one
// worker, tree-build memo off) on the Fig. 6a acceptance workload.
func BenchmarkPlannerSequential(b *testing.B) {
	sys, d := fig6aEnv(b)
	p := core.NewPlanner(core.WithWorkers(1), core.WithoutTreeCache())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Plan(sys, d)
	}
}

// BenchmarkPlannerParallel times the default planner (GOMAXPROCS
// workers, tree-build memo on) on the same workload; compare against
// BenchmarkPlannerSequential for the speedup factor.
func BenchmarkPlannerParallel(b *testing.B) {
	sys, d := fig6aEnv(b)
	p := core.NewPlanner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Plan(sys, d)
	}
}

// BenchmarkDeployRound measures emulated collection rounds per second.
func BenchmarkDeployRound(b *testing.B) {
	_, _, mk := benchEnv(b, 40, 15, 20)
	plan, err := mk().Plan()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Deploy(remo.DeployConfig{Rounds: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// runtimeBenchCfg plans a Fig. 6a-shaped deployment (200 nodes, 150
// small tasks) for the runtime data-path benchmarks.
func runtimeBenchCfg(b *testing.B, nodes, rounds int) (*remo.Plan, remo.DeployConfig) {
	b.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes: nodes, Attrs: 100, CapacityLo: 150, CapacityHi: 400,
		CentralCapacity: float64(nodes) * 12,
		Cost:            cost.Model{PerMessage: 10, PerValue: 1},
		Seed:            9,
	})
	if err != nil {
		b.Fatal(err)
	}
	taskList := workload.Tasks(sys, workload.TaskConfig{
		Count: 150, AttrsPerTask: 3, NodesPerTask: nodes / 10, Seed: 16,
	})
	p := remo.NewPlanner(sys)
	for _, t := range taskList {
		if err := p.AddTask(t); err != nil {
			b.Fatal(err)
		}
	}
	plan, err := p.Plan()
	if err != nil {
		b.Fatal(err)
	}
	return plan, remo.DeployConfig{Rounds: rounds}
}

// BenchmarkRuntimeMemory measures the worker-pool round engine over the
// memory transport at the Fig. 6a anchor scale (200 nodes); the
// before/after trajectory lives in BENCH_runtime.json and the README
// Performance table.
func BenchmarkRuntimeMemory(b *testing.B) {
	plan, dcfg := runtimeBenchCfg(b, 200, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := plan.Deploy(dcfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.ValuesDelivered)/float64(dcfg.Rounds), "values/round")
		}
	}
}

// BenchmarkRuntimeTCP is BenchmarkRuntimeMemory over loopback TCP with
// the batched write path (the transport default).
func BenchmarkRuntimeTCP(b *testing.B) {
	plan, dcfg := runtimeBenchCfg(b, 50, 30)
	dcfg.UseTCP = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Deploy(dcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecEncode measures wire-format encoding.
func BenchmarkCodecEncode(b *testing.B) {
	msg := benchMessage(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecode measures wire-format decoding.
func BenchmarkCodecDecode(b *testing.B) {
	frame, err := transport.Encode(benchMessage(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.Decode(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMessage(values int) transport.Message {
	msg := transport.Message{TreeKey: "1,2,3", From: 7, To: model.Central}
	for i := 0; i < values; i++ {
		msg.Values = append(msg.Values, transport.Value{
			Node: model.NodeID(i + 1), Attr: model.AttrID(i%8 + 1), Round: i, Value: float64(i) * 1.5,
		})
	}
	return msg
}

// BenchmarkMemoryTransport measures the in-process transport round trip.
func BenchmarkMemoryTransport(b *testing.B) {
	tr := transport.NewMemory([]model.NodeID{1})
	defer func() { _ = tr.Close() }()
	msg := benchMessage(16)
	msg.To = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(msg); err != nil {
			b.Fatal(err)
		}
		if got := tr.Drain(1); len(got) != 1 {
			b.Fatal("lost message")
		}
	}
}

// BenchmarkBurstyWalk measures ground-truth value generation (hot inside
// the emulation).
func BenchmarkBurstyWalk(b *testing.B) {
	w := cluster.BurstyWalk{Seed: 1}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += w.Value(model.NodeID(i%100), model.AttrID(i%40), i)
	}
	_ = sink
}
