package remo

import (
	"encoding/json"
	"fmt"
	"io"

	"remo/internal/model"
	"remo/internal/plan"
)

// PlanDoc is the JSON representation of a planned topology, exportable
// with Plan.Export and reloadable with Planner.ImportPlan — for example
// to hand a topology from a planning service to the agents actually
// wiring the overlay, or to persist a known-good plan.
type PlanDoc struct {
	Trees []TreeDoc `json:"trees"`
}

// TreeDoc serializes one collection tree.
type TreeDoc struct {
	// Attrs is the attribute set the tree delivers.
	Attrs []int `json:"attrs"`
	// Edges lists parent links in an order where every parent appears
	// before its children (the root's parent is 0, the collector).
	Edges []EdgeDoc `json:"edges"`
}

// EdgeDoc is one parent link.
type EdgeDoc struct {
	Child  int `json:"child"`
	Parent int `json:"parent"`
}

// Export writes the plan's topology as JSON.
func (p *Plan) Export(w io.Writer) error {
	doc := PlanDoc{Trees: make([]TreeDoc, 0, len(p.res.Forest.Trees))}
	for _, t := range p.res.Forest.Trees {
		td := TreeDoc{}
		for _, a := range t.Attrs.Attrs() {
			td.Attrs = append(td.Attrs, int(a))
		}
		// Members() is BFS from the root: parents precede children.
		for _, n := range t.Members() {
			parent, _ := t.Parent(n)
			td.Edges = append(td.Edges, EdgeDoc{Child: int(n), Parent: int(parent)})
		}
		doc.Trees = append(doc.Trees, td)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ImportPlan reconstructs a previously exported topology over the
// planner's current system and task set, validating it (capacities,
// partition disjointness, membership) before returning it. Importing a
// plan whose topology no longer fits the current demand or capacities
// fails rather than silently overloading nodes.
func (p *Planner) ImportPlan(r io.Reader) (*Plan, error) {
	var doc PlanDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("remo: decode plan: %w", err)
	}

	forest := plan.NewForest()
	for i, td := range doc.Trees {
		attrs := make([]AttrID, 0, len(td.Attrs))
		for _, a := range td.Attrs {
			attrs = append(attrs, AttrID(a))
		}
		t := plan.NewTree(model.NewAttrSet(attrs...))
		for _, e := range td.Edges {
			if err := t.AddNode(NodeID(e.Child), NodeID(e.Parent)); err != nil {
				return nil, fmt.Errorf("remo: tree %d edge %d->%d: %w", i, e.Child, e.Parent, err)
			}
		}
		forest.Add(t)
	}

	d := p.mgr.Demand()
	if p.freqSpec != nil {
		d = p.freqSpec.Apply(d)
	}
	imported := planFromForest(p, forest, d)
	if err := imported.Validate(); err != nil {
		return nil, fmt.Errorf("remo: imported plan invalid: %w", err)
	}
	return imported, nil
}
