package remo

import (
	"fmt"

	"remo/internal/model"
	"remo/internal/repair"
	"remo/internal/tree"
)

// RepairReport summarizes a topology repair after node failures.
type RepairReport struct {
	// FailedMembers is how many placed nodes were lost.
	FailedMembers int
	// TreesRebuilt is how many collection trees were reconstructed.
	TreesRebuilt int
	// PairsLost counts pairs observable only at failed nodes.
	PairsLost int
	// EdgesChanged is the overlay reconfiguration cost in messages.
	EdgesChanged int
}

// Repair reconstructs the plan after the given nodes fail: affected
// trees are rebuilt over the survivors, unaffected trees stay in place.
// The receiver is unchanged; the repaired topology is returned as a new
// Plan (pairs observed only at failed nodes are gone for good).
func (p *Plan) Repair(failed []NodeID) (*Plan, RepairReport, error) {
	dead := make(map[model.NodeID]struct{}, len(failed))
	for _, n := range failed {
		dead[n] = struct{}{}
	}
	newForest, rep := repair.Repair(repair.Config{
		Sys:     p.sys,
		Demand:  p.demand,
		Spec:    p.aggSpec,
		Builder: tree.New(tree.Adaptive),
	}, p.res.Forest, dead)

	// The repaired plan's demand excludes the failed nodes' pairs.
	d, _ := repair.Prune(p.demand, dead)
	sys, err := survivorSystem(p.sys, dead)
	if err != nil {
		return nil, RepairReport{}, fmt.Errorf("remo: survivor system: %w", err)
	}
	repaired := &Plan{
		sys:     sys,
		demand:  d,
		aggSpec: p.aggSpec,
		resolve: p.resolve,
		res:     p.res,
	}
	repaired.res.Forest = newForest
	repaired.res.Stats = newForest.ComputeStats(d, repaired.sys, p.aggSpec)
	repaired.res.Partition = newForest.Partition()
	if err := repaired.Validate(); err != nil {
		return nil, RepairReport{}, fmt.Errorf("remo: repaired topology invalid: %w", err)
	}
	return repaired, RepairReport{
		FailedMembers: rep.FailedMembers,
		TreesRebuilt:  rep.TreesRebuilt,
		PairsLost:     rep.PairsLost,
		EdgesChanged:  rep.EdgesChanged,
	}, nil
}

// survivorSystem removes failed nodes from the system description.
func survivorSystem(sys *System, dead map[model.NodeID]struct{}) (*System, error) {
	if len(dead) == 0 {
		return sys, nil
	}
	survivors := make([]Node, 0, len(sys.Nodes))
	for _, n := range sys.Nodes {
		if _, gone := dead[n.ID]; !gone {
			survivors = append(survivors, n.Clone())
		}
	}
	return model.NewSystem(sys.CentralCapacity, sys.Cost, survivors)
}
