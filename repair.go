package remo

import (
	"fmt"

	"remo/internal/model"
	"remo/internal/repair"
	"remo/internal/tree"
)

// RepairReport summarizes a topology repair after node failures.
type RepairReport struct {
	// FailedMembers is how many placed nodes were lost.
	FailedMembers int
	// TreesRebuilt is how many collection trees were reconstructed.
	TreesRebuilt int
	// PairsLost counts pairs observable only at failed nodes.
	PairsLost int
	// EdgesChanged is the overlay reconfiguration cost in messages.
	EdgesChanged int
}

// Repair reconstructs the plan after the given nodes fail: affected
// trees are rebuilt over the survivors, unaffected trees stay in place.
// The receiver is unchanged; the repaired topology is returned as a new
// Plan (pairs observed only at failed nodes are gone for good).
func (p *Plan) Repair(failed []NodeID) (*Plan, RepairReport, error) {
	dead := make(map[model.NodeID]struct{}, len(failed))
	for _, n := range failed {
		dead[n] = struct{}{}
	}
	newForest, rep := repair.Repair(repair.Config{
		Sys:     p.sys,
		Demand:  p.demand,
		Spec:    p.aggSpec,
		Builder: tree.New(tree.Adaptive),
	}, p.res.Forest, dead)

	// The repaired plan's demand excludes the failed nodes' pairs.
	d := p.demand.Clone()
	for n := range dead {
		for _, a := range d.AttrsOf(n).Attrs() {
			d.Remove(n, a)
		}
	}
	repaired := &Plan{
		sys:     survivorSystem(p.sys, dead),
		demand:  d,
		aggSpec: p.aggSpec,
		resolve: p.resolve,
		res:     p.res,
	}
	repaired.res.Forest = newForest
	repaired.res.Stats = newForest.ComputeStats(d, repaired.sys, p.aggSpec)
	repaired.res.Partition = newForest.Partition()
	if err := repaired.Validate(); err != nil {
		return nil, RepairReport{}, fmt.Errorf("remo: repaired topology invalid: %w", err)
	}
	return repaired, RepairReport{
		FailedMembers: rep.FailedMembers,
		TreesRebuilt:  rep.TreesRebuilt,
		PairsLost:     rep.PairsLost,
		EdgesChanged:  rep.EdgesChanged,
	}, nil
}

// survivorSystem removes failed nodes from the system description.
func survivorSystem(sys *System, dead map[model.NodeID]struct{}) *System {
	if len(dead) == 0 {
		return sys
	}
	survivors := make([]Node, 0, len(sys.Nodes))
	for _, n := range sys.Nodes {
		if _, gone := dead[n.ID]; !gone {
			survivors = append(survivors, n.Clone())
		}
	}
	out, err := model.NewSystem(sys.CentralCapacity, sys.Cost, survivors)
	if err != nil {
		// The source system was valid; removal cannot invalidate it.
		return sys
	}
	return out
}
