package remo_test

import (
	"errors"
	"testing"

	"remo"
)

// predictPlanner builds a verification-armed planner with dead-band
// suppression at the given bound, monitoring attrs 1 and 2 everywhere.
func predictPlanner(t *testing.T, eps float64, opts ...remo.PlannerOption) *remo.Planner {
	t.Helper()
	sys := testSystem(t)
	p := remo.NewPlanner(sys, append([]remo.PlannerOption{
		remo.WithPrediction(eps), remo.WithVerification(),
	}, opts...)...)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()})
	return p
}

// checkSuppConserved asserts the suppression counters' conservation
// invariants on a report.
func checkSuppConserved(t *testing.T, rep remo.DeployReport) {
	t.Helper()
	if rep.ValuesSuppressed > rep.ValuesObserved {
		t.Fatalf("suppressed %d > observed %d", rep.ValuesSuppressed, rep.ValuesObserved)
	}
	if rep.ValuesImputed+rep.MarkersLost > rep.ValuesSuppressed {
		t.Fatalf("imputed %d + lost %d > suppressed %d",
			rep.ValuesImputed, rep.MarkersLost, rep.ValuesSuppressed)
	}
	if rep.ImputeBandMax < 0 || rep.ImputeBandMax > 1+1e-9 {
		t.Fatalf("ImputeBandMax %.9f outside [0, 1]", rep.ImputeBandMax)
	}
}

func TestMonitorPredictionSuppressesAndImputes(t *testing.T) {
	p := predictPlanner(t, 0.01)
	mon, err := p.StartMonitor(remo.MonitorConfig{Source: remo.UtilWalk{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if err := mon.Run(80); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.ValuesSuppressed == 0 || rep.ValuesImputed == 0 || rep.ModelSyncs == 0 {
		t.Fatalf("suppression idle: suppressed=%d imputed=%d syncs=%d",
			rep.ValuesSuppressed, rep.ValuesImputed, rep.ModelSyncs)
	}
	checkSuppConserved(t, rep)
	if err := mon.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Imputation keeps the collector accurate despite the elided traffic.
	if rep.AvgPercentError > 5 {
		t.Fatalf("AvgPercentError %.2f%% too high under suppression", rep.AvgPercentError)
	}
}

func TestDeployPredictionCountersFlow(t *testing.T) {
	p := predictPlanner(t, 0.01)
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 60, Source: remo.UtilWalk{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValuesSuppressed == 0 || rep.ValuesImputed == 0 {
		t.Fatalf("suppression idle in Deploy: %+v", rep)
	}
	checkSuppConserved(t, rep)
}

func TestPredictionColdResumeSeedsModels(t *testing.T) {
	dir := t.TempDir()
	p := predictPlanner(t, 0.01, remo.WithJournal(dir))
	mon, err := p.StartMonitor(remo.MonitorConfig{Source: remo.UtilWalk{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(60); err != nil {
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	mon2, rr, err := p.ResumeMonitor(dir, remo.MonitorConfig{Source: remo.UtilWalk{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon2.Close()
	if !rr.PlanMatched {
		t.Fatal("cold resume did not rebuild the pre-crash plan")
	}
	// Both ends were seeded from the journaled snapshots, so imputation
	// resumes well before the first periodic sync cycle completes.
	if err := mon2.Run(8); err != nil {
		t.Fatal(err)
	}
	rep := mon2.Report()
	if rep.ValuesImputed == 0 {
		t.Fatalf("no imputation within 8 rounds of cold resume: %+v", rep)
	}
	checkSuppConserved(t, rep)
	if err := mon2.Verify(); err != nil {
		t.Fatalf("verify after resume: %v", err)
	}
}

func TestPredictionRateDiscountsPlanPacking(t *testing.T) {
	full := predictPlanner(t, 0.01)
	base, err := full.Plan()
	if err != nil {
		t.Fatal(err)
	}

	disc := predictPlanner(t, 0.01)
	for _, a := range []remo.AttrID{1, 2} {
		if err := disc.SetPredictionRate(a, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	discounted, err := disc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if discounted.TotalCost() >= base.TotalCost() {
		t.Fatalf("discounted plan cost %.1f not below full-rate %.1f",
			discounted.TotalCost(), base.TotalCost())
	}
	if discounted.DemandedPairs() != base.DemandedPairs() {
		t.Fatalf("rate discount changed demanded pairs: %d vs %d",
			discounted.DemandedPairs(), base.DemandedPairs())
	}
}

func TestPredictionSettersRequireArming(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	if err := p.SetPredictionBound(1, 0.02); !errors.Is(err, remo.ErrPredictionOff) {
		t.Fatalf("SetPredictionBound = %v, want ErrPredictionOff", err)
	}
	if err := p.SetPredictionModel(1, remo.PredictEWMA); !errors.Is(err, remo.ErrPredictionOff) {
		t.Fatalf("SetPredictionModel = %v, want ErrPredictionOff", err)
	}
	if err := p.SetPredictionRate(1, 0.5); !errors.Is(err, remo.ErrPredictionOff) {
		t.Fatalf("SetPredictionRate = %v, want ErrPredictionOff", err)
	}
	if err := p.ObservePredictionRate(1, 0.5); !errors.Is(err, remo.ErrPredictionOff) {
		t.Fatalf("ObservePredictionRate = %v, want ErrPredictionOff", err)
	}
}

func TestWithPredictionPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithPrediction(-1) did not panic")
		}
	}()
	remo.NewPlanner(testSystem(t), remo.WithPrediction(-1))
}
