package remo_test

// End-to-end acceptance for the service tier: a serve.Server behind a
// real loopback listener, driven over HTTP and with the remo-load
// client library. TestServiceEndToEnd walks the full lifecycle —
// admit, inspect, stream, modify (incremental replan), remove, drain,
// resume. TestServiceSoak runs concurrent admissions, streaming
// readers, and a chaos collector-crash window for a few seconds
// (REMO_SOAK_SECONDS stretches it for the CI soak), then checks for
// goroutine leaks and dropped operation-status records.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"remo"
	"remo/internal/load"
	"remo/internal/serve"
)

// service is one booted stack: planner, server, and an HTTP frontend
// on a real loopback port.
type service struct {
	planner  *remo.Planner
	srv      *serve.Server
	hs       *http.Server
	base     string
	journal  string
	served   chan error
	shutOnce sync.Once
}

// bootService starts the service tier on 127.0.0.1:0 with fast rounds.
func bootService(t *testing.T, mcfg remo.MonitorConfig, opts ...remo.PlannerOption) *service {
	t.Helper()
	nodes := make([]remo.Node, 12)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 120,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 600,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	journal := t.TempDir()
	opts = append(opts, remo.WithJournal(journal), remo.WithVerification())
	p := remo.NewPlanner(sys, opts...)
	srv, err := serve.New(serve.Config{
		Planner:     p,
		Monitor:     mcfg,
		RoundEvery:  2 * time.Millisecond,
		VerifyEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Drain()
		t.Fatal(err)
	}
	svc := &service{
		planner: p,
		srv:     srv,
		hs:      &http.Server{Handler: srv.Handler()},
		base:    "http://" + ln.Addr().String(),
		journal: journal,
		served:  make(chan error, 1),
	}
	go func() { svc.served <- svc.hs.Serve(ln) }()
	t.Cleanup(func() { svc.shutdown(t) })
	return svc
}

// shutdown drains the backend and stops the HTTP server (idempotent).
func (s *service) shutdown(t *testing.T) {
	t.Helper()
	s.shutOnce.Do(func() {
		s.srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.hs.Shutdown(ctx); err != nil {
			t.Errorf("http shutdown: %v", err)
		}
		select {
		case <-s.served:
		case <-time.After(10 * time.Second):
			t.Error("http server never exited")
		}
	})
}

// httpDo issues one request and returns status and body.
func httpDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// admitOp issues a task mutation, expects 202, and returns the
// operation ID.
func admitOp(t *testing.T, method, url, body string) string {
	t.Helper()
	code, resp := httpDo(t, method, url, body)
	if code != http.StatusAccepted {
		t.Fatalf("%s %s: status %d: %s", method, url, code, resp)
	}
	var out struct {
		Operation serve.OpView `json:"operation"`
	}
	if err := json.Unmarshal(resp, &out); err != nil {
		t.Fatal(err)
	}
	return out.Operation.ID
}

// waitOp polls an operation to a terminal state.
func waitOp(t *testing.T, base, id string) serve.OpView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		code, body := httpDo(t, http.MethodGet, base+"/v1/operations/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("op poll %s: status %d: %s", id, code, body)
		}
		var out struct {
			Operation serve.OpView `json:"operation"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Operation.Status.Terminal() {
			return out.Operation
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("operation %s never reached a terminal state", id)
	return serve.OpView{}
}

// metricValue scrapes one bare metric from /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	_, body := httpDo(t, http.MethodGet, base+"/metrics", "")
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestServiceEndToEnd walks the acceptance lifecycle: admit a task,
// see it in the plan, watch values stream, modify it and observe the
// incremental-replan counters move, remove it, drain, and resume the
// sealed journal cold.
func TestServiceEndToEnd(t *testing.T) {
	svc := bootService(t, remo.MonitorConfig{Seed: 42})
	base := svc.base

	// Admit: POST is asynchronous; the operation reaches succeeded.
	id := admitOp(t, http.MethodPost, base+"/v1/tasks",
		`{"name":"e2e-cpu","attrs":[1],"nodes":[1,2,3,4]}`)
	if op := waitOp(t, base, id); op.Status != serve.OpSucceeded {
		t.Fatalf("admit op = %+v", op)
	}

	// Inspect: the task list and the plan in force cover the pairs.
	code, body := httpDo(t, http.MethodGet, base+"/v1/tasks", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"e2e-cpu"`) {
		t.Fatalf("task list: %d %s", code, body)
	}
	var plan struct {
		DemandedPairs  int `json:"demandedPairs"`
		CollectedPairs int `json:"collectedPairs"`
	}
	_, body = httpDo(t, http.MethodGet, base+"/v1/plan", "")
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.DemandedPairs != 4 || plan.CollectedPairs != 4 {
		t.Fatalf("plan = %+v, want 4/4 pairs", plan)
	}

	// Stream: an SSE subscriber sees round and value events flow.
	resp, err := http.Get(base + "/v1/stream?kinds=round,value")
	if err != nil {
		t.Fatal(err)
	}
	var seen strings.Builder
	buf := make([]byte, 4096)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		seen.Write(buf[:n])
		if strings.Contains(seen.String(), "event: round") &&
			strings.Contains(seen.String(), "event: value") {
			break
		}
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(seen.String(), "event: value") {
		t.Fatalf("stream never delivered value events: %q", seen.String())
	}

	// Modify: widening the task drives the scoped replanner; the diff
	// counters in /metrics move.
	replans := metricValue(t, base, "remo_replans_total")
	incremental := metricValue(t, base, "remo_replans_incremental_total")
	id = admitOp(t, http.MethodPut, base+"/v1/tasks/e2e-cpu",
		`{"name":"e2e-cpu","attrs":[1,2],"nodes":[1,2,3,4]}`)
	if op := waitOp(t, base, id); op.Status != serve.OpSucceeded {
		t.Fatalf("modify op = %+v", op)
	}
	if got := metricValue(t, base, "remo_replans_total"); got <= replans {
		t.Fatalf("remo_replans_total = %v, want > %v after modify", got, replans)
	}
	if got := metricValue(t, base, "remo_replans_incremental_total"); got <= incremental {
		t.Fatalf("remo_replans_incremental_total = %v, want > %v: the modify should be a scoped replan", got, incremental)
	}

	// Remove: the desired set empties again.
	id = admitOp(t, http.MethodDelete, base+"/v1/tasks/e2e-cpu", "")
	if op := waitOp(t, base, id); op.Status != serve.OpSucceeded {
		t.Fatalf("remove op = %+v", op)
	}
	if _, body := httpDo(t, http.MethodGet, base+"/v1/tasks", ""); !strings.Contains(string(body), `"tasks": []`) {
		t.Fatalf("task list after remove: %s", body)
	}

	// Drive it with the load harness over the same socket: the client
	// library's traffic must come back error-free.
	rep, err := load.Run(context.Background(), load.Options{
		BaseURL:     base,
		Clients:     10,
		Duration:    600 * time.Millisecond,
		Ramp:        60 * time.Millisecond,
		Think:       load.ThinkSpec{Dist: load.ThinkExp, Mean: 20 * time.Millisecond},
		MutatorFrac: 0.4,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors > 0 {
		t.Fatalf("load drive: %d requests, %d errors, taxonomy %v", rep.Requests, rep.Errors, rep.Taxonomy)
	}

	// Drain seals the journal; a cold ResumeMonitor accepts it.
	svc.shutdown(t)
	mon, rr, err := svc.planner.ResumeMonitor(svc.journal, remo.MonitorConfig{Seed: 42})
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	defer mon.Close()
	if !rr.PlanMatched {
		t.Fatalf("resume lost plan identity: %+v", rr)
	}
}

// TestServiceSoak hammers the service with concurrent admissions and
// streaming readers across a chaos collector-crash window. The default
// few-second run keeps plain `go test` fast; check.sh stretches it via
// REMO_SOAK_SECONDS for the -race soak. After drain the goroutine
// count must return to baseline and every admitted operation must hold
// a terminal status record.
func TestServiceSoak(t *testing.T) {
	dur := 3 * time.Second
	if s := os.Getenv("REMO_SOAK_SECONDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad REMO_SOAK_SECONDS %q", s)
		}
		dur = time.Duration(n) * time.Second
	}
	baseline := runtime.NumGoroutine()

	// The collector crashes ~100 rounds in; the backend must auto-resume
	// it from the journal.
	svc := bootService(t, remo.MonitorConfig{
		Seed:  9,
		Chaos: &remo.ChaosConfig{CollectorCrashAt: 100, Seed: 9},
	})
	base := svc.base

	// Streaming readers: SSE subscribers that consume until cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream", nil)
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 4096)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					return
				}
			}
		}()
	}

	// Direct admissions alongside the harness: record every operation ID
	// the service accepted so conservation is checkable per-record.
	// (Helpers that t.Fatal are off-limits in a goroutine, so this loop
	// reports through t.Errorf and stops.)
	var direct []string
	directDone := make(chan struct{})
	go func() {
		defer close(directDone)
		tick := dur / 16
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(tick):
			}
			body := fmt.Sprintf(`{"name":"soak-direct-%d","attrs":[%d],"nodes":[%d,%d]}`,
				i, i%4+1, i%12+1, (i+5)%12+1)
			resp, err := http.DefaultClient.Post(base+"/v1/tasks", "application/json", strings.NewReader(body))
			if err != nil {
				if ctx.Err() == nil {
					t.Errorf("direct admission: %v", err)
				}
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("direct admission: status %d: %s", resp.StatusCode, data)
				return
			}
			var out struct {
				Operation serve.OpView `json:"operation"`
			}
			if err := json.Unmarshal(data, &out); err != nil {
				t.Errorf("direct admission: %v", err)
				return
			}
			direct = append(direct, out.Operation.ID)
		}
	}()

	// The harness supplies the bulk concurrency: half mutators, half
	// delta readers.
	rep, err := load.Run(ctx, load.Options{
		BaseURL:     base,
		Clients:     24,
		Duration:    dur,
		Think:       load.ThinkSpec{Dist: load.ThinkExp, Mean: 25 * time.Millisecond},
		MutatorFrac: 0.5,
		Seed:        23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	readers.Wait()
	<-directDone

	if rep.Requests == 0 {
		t.Fatal("soak sent no traffic")
	}
	if rep.Errors > 0 {
		t.Fatalf("soak errors = %d, taxonomy %v", rep.Errors, rep.Taxonomy)
	}

	// The chaos window actually hit and the backend healed it.
	if got := metricValue(t, base, "remo_collector_resumes_total"); got < 1 {
		t.Fatalf("remo_collector_resumes_total = %v, want >= 1 (chaos window missed)", got)
	}
	if got := metricValue(t, base, "remo_verify_failures_total"); got != 0 {
		t.Fatalf("remo_verify_failures_total = %v", got)
	}

	// Drain applies everything still queued; after it, the op ledger must
	// balance: every enqueued operation reached a terminal state.
	svc.srv.Drain()
	enq := metricValue(t, base, "remo_ops_enqueued_total")
	done := metricValue(t, base, "remo_ops_succeeded_total") + metricValue(t, base, "remo_ops_failed_total")
	if enq != done {
		t.Fatalf("operation records dropped: enqueued %v, terminal %v", enq, done)
	}
	// And each directly-admitted record is still retained and terminal.
	for _, id := range direct {
		if op := waitOp(t, base, id); !op.Status.Terminal() {
			t.Fatalf("operation %s not terminal after drain: %+v", id, op)
		}
	}

	// Full shutdown, then the goroutine count returns to baseline.
	svc.shutdown(t)
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	var stacks strings.Builder
	_ = pprof.Lookup("goroutine").WriteTo(&stacks, 1)
	t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), stacks.String())
}
