package remo

// Serve-mode admission support: the service front door (internal/serve)
// admits task mutations against a hard feasibility bound before they
// reach the planner, so over-budget requests are rejected with a typed
// error instead of planning a topology that cannot fit.

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible marks an admission rejected because the demanded pairs
// cannot fit the collector's capacity under the cost model — no
// topology, however clever, delivers more than AdmissionBudget pairs.
// Test with errors.Is.
var ErrInfeasible = errors.New("task set infeasible for collector capacity")

// AdmissionBudget is the hard upper bound on distinct node-attribute
// pairs any plan can deliver to the collector: receiving N pairs costs
// at least C + a·N (a single tree; every extra tree adds another C), so
// the budget is floor((CentralCapacity − C) / a). Zero per-value cost
// means the bound degenerates to "unlimited" (math.MaxInt). This is an
// admission-control bound, not a promise — placement constraints can
// make a within-budget set partially collectable, which shows up as
// coverage, not rejection.
func (p *Planner) AdmissionBudget() int {
	c := p.sys.Cost
	slack := p.sys.CentralCapacity - c.PerMessage
	if slack < 0 {
		return 0
	}
	if c.PerValue <= 0 {
		return math.MaxInt
	}
	return int(math.Floor(slack / c.PerValue))
}

// CheckAdmission rejects a demanded pair count that exceeds the
// collector's admission budget, wrapping ErrInfeasible with the
// numbers.
func (p *Planner) CheckAdmission(pairs int) error {
	if budget := p.AdmissionBudget(); pairs > budget {
		return fmt.Errorf("remo: %w: %d pairs demanded, budget %d", ErrInfeasible, pairs, budget)
	}
	return nil
}
