package remo_test

import (
	"strings"
	"testing"

	"remo"
)

// TestStoreProcessorIntegration wires the data repository and result
// processor into a deployment via OnValue and checks both observe the
// collected stream.
func TestStoreProcessorIntegration(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}

	st := remo.NewStore(32)
	pr := remo.NewProcessor(64)
	if err := pr.AddTrigger(remo.Trigger{
		Name: "always", Attr: 1, Cond: remo.TriggerAbove, Threshold: -1, Cooldown: 5,
	}); err != nil {
		t.Fatal(err)
	}

	rep, err := plan.Deploy(remo.DeployConfig{
		Rounds: 20,
		Seed:   9,
		OnValue: func(pair remo.Pair, round int, v float64) {
			st.Observe(pair, round, v)
			pr.Observe(pair, round, v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every covered pair is in the repository.
	if got := len(st.Pairs()); got != rep.CoveredPairs {
		t.Fatalf("store pairs = %d, covered = %d", got, rep.CoveredPairs)
	}
	// Window queries return ordered history.
	pair := st.Pairs()[0]
	window := st.Window(pair, 0, 20)
	if len(window) < 2 {
		t.Fatalf("window too small: %+v", window)
	}
	sum, ok := st.Summarize(pair)
	if !ok || sum.Count != len(window) || sum.Min > sum.Max {
		t.Fatalf("summary = %+v (window %d)", sum, len(window))
	}
	// The always-firing trigger produced alerts, throttled by cooldown.
	if pr.AlertCount() == 0 {
		t.Fatal("no alerts fired")
	}
}

// TestPlanRepairFlow plans, breaks a relay node, repairs, and verifies
// the repaired topology restores coverage for survivors.
func TestPlanRepairFlow(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2, 3}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}

	victim := plan.Trees()[0].Root
	repaired, rep, err := plan.Repair([]remo.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TreesRebuilt == 0 || rep.FailedMembers == 0 {
		t.Fatalf("repair report = %+v", rep)
	}
	if rep.PairsLost != 3 { // the victim's own three attributes
		t.Fatalf("PairsLost = %d, want 3", rep.PairsLost)
	}
	if err := repaired.Validate(); err != nil {
		t.Fatal(err)
	}
	// Survivors stay fully covered after the repair.
	if repaired.PercentCollected() < 99 {
		t.Fatalf("repaired coverage = %.1f%%", repaired.PercentCollected())
	}
	// The repaired plan deploys cleanly.
	drep, err := repaired.Deploy(remo.DeployConfig{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if drep.CoveredPairs != drep.DemandedPairs {
		t.Fatalf("post-repair coverage %d/%d", drep.CoveredPairs, drep.DemandedPairs)
	}
}

// TestSharedValueTask exercises the DSDP extension end to end.
func TestSharedValueTask(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	ids := allNodes(sys)
	// Two shared storage volumes, each observed by three hosts.
	groups := [][]remo.NodeID{ids[:3], ids[3:6]}
	if err := p.AddSharedValueTask("storage-perf", 4, groups, 2); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Trees()) < 2 {
		t.Fatalf("trees = %d, want >= 2 (disjoint paths)", len(plan.Trees()))
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredPairs == 0 {
		t.Fatal("nothing covered")
	}
	// Too many replicas for the group size must fail.
	if err := p.AddSharedValueTask("too-many", 5, groups, 4); err == nil {
		t.Fatal("oversubscribed DSDP accepted")
	}
}

// TestDeployOverTCPMatchesCoverage cross-checks the TCP transport
// against the in-process one on the same plan.
func TestDeployOverTCPMatchesCoverage(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := plan.Deploy(remo.DeployConfig{Rounds: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := plan.Deploy(remo.DeployConfig{Rounds: 12, Seed: 1, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if tcp.CoveredPairs != mem.CoveredPairs {
		t.Fatalf("TCP covered %d, memory covered %d", tcp.CoveredPairs, mem.CoveredPairs)
	}
	if tcp.MessagesSent == 0 {
		t.Fatal("no TCP traffic")
	}
}

// TestBaselinePlansAreWorseOrEqual sanity-checks the WithBaseline
// option against the search on a constrained system.
func TestBaselinePlansAreWorseOrEqual(t *testing.T) {
	nodes := make([]remo.Node, 20)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 60,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 300,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	coverage := func(b remo.Baseline) float64 {
		p := remo.NewPlanner(sys, remo.WithBaseline(b))
		for _, a := range []remo.AttrID{1, 2, 3, 4} {
			p.MustAddTask(remo.Task{
				Name:  "t" + string(rune('0'+a)),
				Attrs: []remo.AttrID{a},
				Nodes: sys.NodeIDs(),
			})
		}
		plan, err := p.Plan()
		if err != nil {
			t.Fatal(err)
		}
		return plan.PercentCollected()
	}
	remoPct := coverage(remo.BaselineNone)
	if sp := coverage(remo.BaselineSingletonSet); remoPct < sp {
		t.Fatalf("REMO %.1f%% < SP %.1f%%", remoPct, sp)
	}
	if op := coverage(remo.BaselineOneSet); remoPct < op {
		t.Fatalf("REMO %.1f%% < OP %.1f%%", remoPct, op)
	}
}

// TestDistanceAwarePlanning installs a racked distance function and
// verifies planning remains valid and accounts for the dearer cross-rack
// sends.
func TestDistanceAwarePlanning(t *testing.T) {
	sys := testSystem(t)
	sys.Distance = remo.RackDistance(4, 1, 5)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// The same plan must cost strictly more than under uniform distance
	// whenever any edge crosses racks; at minimum it costs no less.
	uniform := testSystem(t)
	pu := remo.NewPlanner(uniform)
	pu.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(uniform)})
	uplan, err := pu.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCost() < uplan.TotalCost()-1e-6 {
		t.Fatalf("distance-aware cost %.1f < uniform %.1f", plan.TotalCost(), uplan.TotalCost())
	}
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredPairs == 0 {
		t.Fatal("nothing covered under distance-aware plan")
	}
}

// TestPlanExportImport round-trips a plan through its JSON form.
func TestPlanExportImport(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(sys)})
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := plan.Export(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := p.ImportPlan(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if imported.CollectedPairs() != plan.CollectedPairs() {
		t.Fatalf("imported collects %d, original %d",
			imported.CollectedPairs(), plan.CollectedPairs())
	}
	if imported.TotalCost() != plan.TotalCost() {
		t.Fatalf("imported cost %.3f, original %.3f", imported.TotalCost(), plan.TotalCost())
	}
	// Garbage and structurally invalid docs are rejected.
	if _, err := p.ImportPlan(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := p.ImportPlan(strings.NewReader(
		`{"trees":[{"attrs":[1],"edges":[{"child":2,"parent":9}]}]}`)); err == nil {
		t.Fatal("dangling edge accepted")
	}
	// A plan that overloads the current system is rejected: shrink
	// capacities and re-import.
	small := testSystem(t)
	for i := range small.Nodes {
		small.Nodes[i].Capacity = 12
	}
	ps := remo.NewPlanner(small)
	ps.MustAddTask(remo.Task{Name: "all", Attrs: []remo.AttrID{1, 2}, Nodes: allNodes(small)})
	if _, err := ps.ImportPlan(strings.NewReader(buf.String())); err == nil {
		t.Fatal("over-capacity import accepted")
	}
}
