package remo_test

import (
	"reflect"
	"strings"
	"testing"

	"remo"
)

// TestShardCrashResumeEndToEnd is the sharded durability acceptance
// run: a 4-shard session loses shard 0 (which, as the heaviest-loaded
// shard, always owns at least one tree — and holds the dispatcher
// lease), the orphaned trees are re-dispatched onto survivors within
// the suspicion window, a new leader is elected once the old lease
// expires, and the shard resumes from its own journal while the other
// shards never notice.
func TestShardCrashResumeEndToEnd(t *testing.T) {
	const (
		shards   = 4
		crashRnd = 8
		horizon  = 20
	)
	dir := t.TempDir()
	sys := bigSystem(t, 16)
	p := remo.NewPlanner(sys, remo.WithVerification())
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{
		Seed:    7,
		Shards:  shards,
		Journal: dir,
		Chaos:   &remo.ChaosConfig{ShardCrashAt: map[int]int{0: crashRnd}, Seed: 7},
		Failure: &remo.FailurePolicy{SuspicionRounds: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()

	assign := mon.ShardAssignment()
	if len(assign) == 0 {
		t.Fatal("sharded session placed no trees")
	}
	victims := 0
	for _, s := range assign {
		if s == 0 {
			victims++
		}
	}
	if victims == 0 {
		t.Fatal("shard 0 owns no trees; the crash would be a no-op")
	}

	if err := mon.Run(horizon); err != nil {
		t.Fatal(err)
	}
	pre := mon.Report()
	if pre.Shards != shards || pre.ShardsDown != 1 {
		t.Fatalf("shards=%d down=%d, want %d/1", pre.Shards, pre.ShardsDown, shards)
	}
	if pre.OrphanedTrees != victims || pre.TreesRedispatched != victims {
		t.Fatalf("orphaned=%d redispatched=%d, want %d each",
			pre.OrphanedTrees, pre.TreesRedispatched, victims)
	}
	if pre.LeaderElections == 0 {
		t.Fatal("leader died but no election was recorded")
	}
	if len(pre.Redispatches) == 0 {
		t.Fatal("no re-dispatch events recorded")
	}
	for _, ev := range pre.Redispatches[:victims] {
		if ev.FromShard != 0 {
			t.Fatalf("re-dispatch %+v does not come from the dead shard", ev)
		}
	}
	if len(pre.ShardWatermarks) != shards {
		t.Fatalf("got %d watermarks, want %d", len(pre.ShardWatermarks), shards)
	}
	if pre.ShardWatermarks[0] >= crashRnd {
		t.Fatalf("dead shard watermark %d at crash round %d", pre.ShardWatermarks[0], crashRnd)
	}
	for s := 1; s < shards; s++ {
		if pre.ShardWatermarks[s] != horizon-1 {
			t.Fatalf("live shard %d watermark %d, want %d", s, pre.ShardWatermarks[s], horizon-1)
		}
	}

	rr, err := mon.ResumeShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if rr.RecoveredSamples == 0 {
		t.Fatal("no samples recovered from the shard journal")
	}
	if rr.RecoveredRound >= crashRnd {
		t.Fatalf("recovered round %d, want < crash round %d", rr.RecoveredRound, crashRnd)
	}
	if !rr.PlanMatched {
		t.Fatal("resumed shard does not match the journaled plan fingerprint")
	}

	if err := mon.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := mon.Verify(); err != nil {
		t.Fatalf("recovered session failed verification: %v", err)
	}
	rep := mon.Report()
	if rep.ShardsDown != 0 {
		t.Fatalf("shards down = %d after resume", rep.ShardsDown)
	}
	if rep.CollectorRestarts != 1 {
		t.Fatalf("restarts = %d, want 1", rep.CollectorRestarts)
	}
	if rep.ValuesDelivered <= pre.ValuesDelivered {
		t.Fatal("no values delivered after the shard resume")
	}
}

// TestShardColdResumeIdenticalAssignment pins the cold-resume contract
// of the sharded tier: a process restart rebuilds the identical
// tree→shard map from the journaled assignment, and each shard's views
// re-seed from its own journal.
func TestShardColdResumeIdenticalAssignment(t *testing.T) {
	dir := t.TempDir()
	sys := bigSystem(t, 12)
	p := remo.NewPlanner(sys, remo.WithVerification(), remo.WithJournal(dir))
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(12); err != nil {
		t.Fatal(err)
	}
	want := mon.ShardAssignment()
	if len(want) == 0 {
		t.Fatal("sharded session placed no trees")
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	mon2, rr, err := p.ResumeMonitor(dir, remo.MonitorConfig{Seed: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon2.Close() }()
	if !rr.PlanMatched {
		t.Fatal("cold resume rebuilt a different plan fingerprint")
	}
	if rr.RecoveredSamples == 0 {
		t.Fatal("cold resume recovered no samples")
	}
	if got := mon2.ShardAssignment(); !reflect.DeepEqual(got, want) {
		t.Fatalf("cold-resumed assignment %v, want the pre-crash %v", got, want)
	}
	if err := mon2.Run(8); err != nil {
		t.Fatal(err)
	}
	if err := mon2.Verify(); err != nil {
		t.Fatalf("cold-resumed session failed verification: %v", err)
	}
	if rep := mon2.Report(); rep.Shards != 4 || rep.ShardsDown != 0 {
		t.Fatalf("shards=%d down=%d after cold resume, want 4/0", rep.Shards, rep.ShardsDown)
	}
}

// TestShardedWithoutJournal covers the non-durable sharded session:
// collection works, the report carries shard counters, and ResumeShard
// is refused with a clear message.
func TestShardedWithoutJournal(t *testing.T) {
	sys := bigSystem(t, 10)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 5, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(10); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.Shards != 3 || rep.ShardsDown != 0 {
		t.Fatalf("shards=%d down=%d, want 3/0", rep.Shards, rep.ShardsDown)
	}
	if rep.PercentCollected <= 0 {
		t.Fatal("sharded session collected nothing")
	}
	if mon.ShardLeader() != 0 {
		t.Fatalf("leader = %d, want the initial leaseholder 0", mon.ShardLeader())
	}
	if _, err := mon.ResumeShard(0); err == nil ||
		!strings.Contains(err.Error(), "not sharded or not journaled") {
		t.Fatalf("err = %v, want not-journaled refusal", err)
	}
}
