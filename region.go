package remo

import (
	"fmt"

	"remo/internal/verify"
)

// RegionCoverage reports, per region, the percentage of the session's
// base demand (the full task set, before any failure pruning) whose
// pairs the currently installed topology still collects. A healthy
// session reports 100 everywhere; after a region loss the lost region
// falls toward 0 while detect→repair re-homes the surviving regions'
// orphaned trees back toward their pre-loss coverage. The map feeds the
// service gauges and the region bench timeline.
func (m *Monitor) RegionCoverage() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return verify.RegionCoverageMap(m.regionVerifyContext(), m.adaptor.Forest())
}

// VerifyRegionCoverage machine-checks the region-loss survival
// invariant on the live session: lost regions are written off, and
// every surviving region must keep at least floorPct of its base
// demand collected by the installed topology. A region counts as lost
// when it has at least one node declared dead and no live member left
// in the installed forest — nodes the plan never placed cannot
// heartbeat, so requiring literally every node dead would let a fully
// partitioned region masquerade as surviving. Returns a
// verify.ErrRegion-wrapped error on violation.
func (m *Monitor) VerifyRegionCoverage(floorPct float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make(map[string]bool)
	for _, t := range m.adaptor.Forest().Trees {
		for _, n := range t.Members() {
			if _, dead := m.dead[n]; !dead {
				live[m.planner.sys.RegionOf(n)] = true
			}
		}
	}
	lost := make(map[string]bool)
	for r, ids := range m.planner.sys.RegionNodes() {
		if len(ids) == 0 || live[r] {
			continue
		}
		for _, n := range ids {
			if _, dead := m.dead[n]; dead {
				lost[r] = true
				break
			}
		}
	}
	if err := verify.RegionCoverage(m.regionVerifyContext(), m.adaptor.Forest(), lost, floorPct); err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	return nil
}

// regionVerifyContext builds the verification context region checks run
// against: the base demand, so lost pairs count as lost rather than
// silently dropping out with the pruned demand. Callers hold m.mu.
func (m *Monitor) regionVerifyContext() verify.Context {
	return verify.Context{
		Sys:     m.planner.sys,
		Demand:  m.baseDemand,
		Spec:    m.planner.aggSpec,
		Resolve: m.planner.resolveAttr,
	}
}
