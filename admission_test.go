package remo_test

import (
	"errors"
	"testing"

	"remo"
)

// TestAdmissionBudget pins the hard bound: floor((central − C)/a), with
// the degenerate free-payload and over-committed edges.
func TestAdmissionBudget(t *testing.T) {
	mk := func(central float64, cost remo.CostModel) *remo.Planner {
		t.Helper()
		sys, err := remo.NewSystem(remo.SystemSpec{
			CentralCapacity: central,
			Cost:            cost,
			Nodes: []remo.Node{
				{ID: 1, Capacity: 100, Attrs: []remo.AttrID{1}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return remo.NewPlanner(sys)
	}

	if got := mk(600, remo.CostModel{PerMessage: 10, PerValue: 1}).AdmissionBudget(); got != 590 {
		t.Fatalf("budget = %d, want 590", got)
	}
	if got := mk(25, remo.CostModel{PerMessage: 10, PerValue: 2}).AdmissionBudget(); got != 7 {
		t.Fatalf("budget = %d, want floor(15/2) = 7", got)
	}
	if got := mk(5, remo.CostModel{PerMessage: 10, PerValue: 1}).AdmissionBudget(); got != 0 {
		t.Fatalf("budget = %d, want 0 when C alone exceeds capacity", got)
	}
}

// TestCheckAdmission pins the typed rejection: over-budget wraps
// ErrInfeasible, within-budget is nil.
func TestCheckAdmission(t *testing.T) {
	sys := testSystem(t) // central 600, C=10, a=1 → budget 590
	p := remo.NewPlanner(sys)
	if err := p.CheckAdmission(590); err != nil {
		t.Fatalf("within budget rejected: %v", err)
	}
	err := p.CheckAdmission(591)
	if err == nil {
		t.Fatal("over budget admitted")
	}
	if !errors.Is(err, remo.ErrInfeasible) {
		t.Fatalf("rejection error = %v, want ErrInfeasible", err)
	}
}

// TestMonitorServeHooks pins the serve-mode facade additions:
// CollectorDown, JournalDir, and a forced Checkpoint a resume accepts.
func TestMonitorServeHooks(t *testing.T) {
	sys := testSystem(t)
	dir := t.TempDir()
	p := remo.NewPlanner(sys, remo.WithJournal(dir))
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})

	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if mon.JournalDir() != dir {
		t.Fatalf("JournalDir = %q, want %q", mon.JournalDir(), dir)
	}
	if mon.CollectorDown() {
		t.Fatal("fresh session reports collector down")
	}
	if err := mon.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := mon.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fp := mon.Fingerprint()
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Checkpoint(); !errors.Is(err, remo.ErrMonitorClosed) {
		t.Fatalf("checkpoint after close = %v, want ErrMonitorClosed", err)
	}

	// The forced checkpoint (plus the close seal) must leave a journal a
	// cold resume accepts with the same plan identity.
	mon2, rep, err := p.ResumeMonitor(dir, remo.MonitorConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer mon2.Close()
	if !rep.PlanMatched || mon2.Fingerprint() != fp {
		t.Fatalf("resume lost plan identity: matched=%v fp=%d want %d",
			rep.PlanMatched, mon2.Fingerprint(), fp)
	}
	if rep.RecoveredSamples == 0 {
		t.Fatal("resume recovered no samples")
	}

	// Checkpoint on a non-durable session is a typed error, not a panic.
	p2 := remo.NewPlanner(sys)
	p2.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: allNodes(sys)})
	mon3, err := p2.StartMonitor(remo.MonitorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mon3.Close()
	if err := mon3.Checkpoint(); err == nil {
		t.Fatal("checkpoint without journaling succeeded")
	}
	if got := mon3.JournalDir(); got != "" {
		t.Fatalf("non-durable JournalDir = %q, want empty", got)
	}
}
