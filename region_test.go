package remo_test

import (
	"errors"
	"strings"
	"testing"

	"remo"
	"remo/internal/reliability"
	"remo/internal/verify"
)

// regionSystem builds regions regions of perRegion nodes each, labeled
// r0..r{regions-1}, with the collector homed in r0 and inter-region
// edges priced at 5x.
func regionSystem(t *testing.T, regions, perRegion int) *remo.System {
	t.Helper()
	nodes := make([]remo.Node, 0, regions*perRegion)
	for r := 0; r < regions; r++ {
		for i := 0; i < perRegion; i++ {
			nodes = append(nodes, remo.Node{
				ID:       remo.NodeID(r*perRegion + i + 1),
				Capacity: 400,
				Attrs:    []remo.AttrID{1, 2, 3},
				Region:   remo.RegionName(r),
			})
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 8000,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.CentralRegion = remo.RegionName(0)
	sys.ApplyTopology(remo.NewTopology(1, 5))
	return sys
}

// runRegionLoss drives a monitored session through a permanent loss of
// region r1 and returns the closed monitor's report plus the coverage
// map and floor-check error sampled after repair.
func runRegionLoss(t *testing.T, useTCP bool) {
	const (
		regions   = 3
		perRegion = 8
		lossRound = 8
		suspicion = 3
		rounds    = 30
	)
	sys := regionSystem(t, regions, perRegion)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2, 3}, Nodes: sys.NodeIDs()})

	lost := remo.RegionName(1)
	mon, err := p.StartMonitor(remo.MonitorConfig{
		Scheme: remo.AdaptAdaptive,
		Seed:   7,
		UseTCP: useTCP,
		Chaos: &remo.ChaosConfig{
			RegionPartitions: map[string][]remo.ChaosWindow{
				lost: {{From: lossRound, To: rounds + 1}},
			},
		},
		Failure: &remo.FailurePolicy{SuspicionRounds: suspicion},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(rounds); err != nil {
		t.Fatal(err)
	}

	// The partition silences every r1 heartbeat: the detector must
	// declare the whole region dead and the repair loop re-home the
	// orphaned trees onto survivors.
	rep := mon.Report()
	if rep.FailuresDetected != perRegion {
		t.Fatalf("detected %d failures, want the whole region (%d)", rep.FailuresDetected, perRegion)
	}
	if len(rep.Repairs) == 0 {
		t.Fatal("no automatic repairs recorded")
	}

	cov := mon.RegionCoverage()
	if len(cov) != regions {
		t.Fatalf("coverage map %v, want %d regions", cov, regions)
	}
	if cov[lost] > 1 {
		t.Fatalf("lost region still reports %.1f%% coverage", cov[lost])
	}
	for r, pct := range cov {
		if r != lost && pct < 90 {
			t.Fatalf("surviving region %q at %.1f%%, want >= 90", r, pct)
		}
	}
	if err := mon.VerifyRegionCoverage(90); err != nil {
		t.Fatalf("region coverage floor: %v", err)
	}
	// The full invariant suite still holds on the repaired session.
	if err := mon.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	// Survivors keep collecting: re-homed trees exclude every r1 node.
	for _, ev := range rep.Repairs {
		for _, n := range ev.Failed {
			if got := sys.RegionOf(n); got != lost {
				t.Fatalf("node %v from region %q declared failed; only %q was partitioned", n, got, lost)
			}
		}
	}
}

func TestRegionLossSurvivalMemory(t *testing.T) { runRegionLoss(t, false) }

func TestRegionLossSurvivalTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP overlay in -short mode")
	}
	runRegionLoss(t, true)
}

// TestRegionCoverageBeforeLoss asserts the steady-state form: a healthy
// topology-priced session covers every region fully.
func TestRegionCoverageBeforeLoss(t *testing.T) {
	sys := regionSystem(t, 3, 6)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1, 2}, Nodes: sys.NodeIDs()})
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(5); err != nil {
		t.Fatal(err)
	}
	for r, pct := range mon.RegionCoverage() {
		if pct != 100 {
			t.Fatalf("healthy region %q at %.1f%%, want 100", r, pct)
		}
	}
	if err := mon.VerifyRegionCoverage(100); err != nil {
		t.Fatal(err)
	}
}

// TestLinkFlapRecovers asserts a flapped inter-region link only costs
// coverage while the window is open: after it closes and the nodes
// reintegrate, the session verifies clean again.
func TestLinkFlapRecovers(t *testing.T) {
	sys := regionSystem(t, 2, 6)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	mon, err := p.StartMonitor(remo.MonitorConfig{
		Scheme: remo.AdaptAdaptive,
		Seed:   11,
		Chaos: &remo.ChaosConfig{
			LinkFlaps: map[remo.ChaosRegionLink][]remo.ChaosWindow{
				remo.ChaosNormLink(remo.RegionName(0), remo.RegionName(1)): {{From: 6, To: 12}},
			},
		},
		Failure: &remo.FailurePolicy{SuspicionRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(30); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	// r1 sits behind the flapped link (collector is in r0): its nodes
	// must be declared dead during the flap and reintegrated after.
	if rep.FailuresDetected == 0 {
		t.Fatal("flap went undetected")
	}
	if rep.NodesRecovered == 0 {
		t.Fatal("no nodes reintegrated after the flap closed")
	}
	if err := mon.VerifyRegionCoverage(90); err != nil {
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAddRegionSpreadTask exercises the facade: replicas of a critical
// shared value must draw from distinct regions, and colocated observer
// groups are rejected.
func TestAddRegionSpreadTask(t *testing.T) {
	sys := regionSystem(t, 3, 4)
	p := remo.NewPlanner(sys)
	// Observers 1 (r0), 5 (r1), 9 (r2) share one logical value.
	if err := p.AddRegionSpreadTask("disk", 3, [][]remo.NodeID{{1, 5, 9}}, 2); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Trees()) < 2 {
		t.Fatalf("region-spread task planned %d trees, want >= 2", len(plan.Trees()))
	}

	// All observers in r0: anti-colocation must refuse.
	p2 := remo.NewPlanner(regionSystem(t, 3, 4))
	err = p2.AddRegionSpreadTask("disk", 3, [][]remo.NodeID{{1, 2, 3}}, 2)
	if !errors.Is(err, reliability.ErrColocated) {
		t.Fatalf("colocated observers accepted: %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "region") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestMonitorVerifyRegionFloorTrips proves the floor check is
// non-vacuous on a live session: an absurd floor must trip ErrRegion
// even on a healthy run.
func TestMonitorVerifyRegionFloorTrips(t *testing.T) {
	sys := regionSystem(t, 2, 4)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(3); err != nil {
		t.Fatal(err)
	}
	if err := mon.VerifyRegionCoverage(101); !errors.Is(err, verify.ErrRegion) {
		t.Fatalf("floor 101 passed: %v", err)
	}
}
