package remo_test

import (
	"strings"
	"testing"

	"remo"
)

// TestCollectorCrashRecoveryEndToEnd is the durability acceptance run:
// a seeded chaos schedule crashes the central collector mid-session,
// the session rides out the outage (leaves buffer their values), the
// collector resumes from the journal onto a fenced epoch, and the run
// continues for 50+ rounds with the verification harness passing
// against the recovered state.
func TestCollectorCrashRecoveryEndToEnd(t *testing.T) {
	const (
		crashRnd = 10
		outage   = 3
		after    = 50
	)
	dir := t.TempDir()
	sys := bigSystem(t, 20)
	p := remo.NewPlanner(sys, remo.WithVerification())
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{
		Seed:    7,
		Chaos:   &remo.ChaosConfig{CollectorCrashAt: crashRnd, Seed: 7},
		Failure: &remo.FailurePolicy{SuspicionRounds: 3},
		Journal: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()

	if err := mon.Run(crashRnd + outage); err != nil {
		t.Fatal(err)
	}
	pre := mon.Report()
	if pre.FramesBuffered == 0 {
		t.Fatal("no frames buffered during the collector outage")
	}
	if pre.CollectorRestarts != 0 {
		t.Fatalf("restarts = %d before resume", pre.CollectorRestarts)
	}

	rr, err := mon.Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Epoch < 2 {
		t.Fatalf("resumed epoch = %d, want a post-crash bump", rr.Epoch)
	}
	if !rr.PlanMatched {
		t.Fatal("resumed session does not match the journaled plan fingerprint")
	}
	if rr.RecoveredSamples == 0 {
		t.Fatal("no samples recovered from the journal")
	}
	// The journal stops at the crash: nothing from the outage window.
	if rr.RecoveredRound >= crashRnd {
		t.Fatalf("recovered round %d, want < crash round %d", rr.RecoveredRound, crashRnd)
	}

	if err := mon.Run(after); err != nil {
		t.Fatal(err)
	}
	if err := mon.Verify(); err != nil {
		t.Fatalf("recovered session failed verification: %v", err)
	}
	rep := mon.Report()
	if rep.Rounds != crashRnd+outage+after {
		t.Fatalf("rounds = %d, want %d", rep.Rounds, crashRnd+outage+after)
	}
	if rep.CollectorRestarts != 1 {
		t.Fatalf("restarts = %d, want 1", rep.CollectorRestarts)
	}
	if rep.ValuesDelivered <= pre.ValuesDelivered {
		t.Fatal("no values delivered after the resume")
	}
	// Buffered leaf values were delivered or accounted as shed; nothing
	// vanished (remaining parked frames keep the inequality strict).
	if rep.FramesRedelivered == 0 {
		t.Fatal("no buffered frames redelivered after the resume")
	}
	if rep.FramesRedelivered+rep.FramesShed > rep.FramesBuffered {
		t.Fatalf("frame conservation violated: %d redelivered + %d shed > %d buffered",
			rep.FramesRedelivered, rep.FramesShed, rep.FramesBuffered)
	}
	if rep.StaleEpochFrames < 0 {
		t.Fatalf("negative stale-epoch counter %d", rep.StaleEpochFrames)
	}
	// The repository kept every post-resume value too.
	if mon.Store() == nil || mon.Store().Len() <= rr.RecoveredSamples {
		t.Fatal("repository did not grow past the recovered snapshot")
	}
}

// TestColdResumeMonitor restarts a whole process's worth of state: the
// first session journals and dies, and ResumeMonitor boots a fresh
// session from the journal alone — recovered demand, store and history.
func TestColdResumeMonitor(t *testing.T) {
	dir := t.TempDir()
	sys := bigSystem(t, 12)
	p := remo.NewPlanner(sys, remo.WithVerification(), remo.WithJournal(dir))
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(20); err != nil {
		t.Fatal(err)
	}
	firstLen := mon.Store().Len()
	if firstLen == 0 {
		t.Fatal("journaled session stored nothing")
	}
	if err := mon.Close(); err != nil { // seals a final checkpoint
		t.Fatal(err)
	}

	mon2, rr, err := p.ResumeMonitor(dir, remo.MonitorConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon2.Close() }()
	if rr.RecoveredSamples == 0 || rr.RecoveredRound < 0 {
		t.Fatalf("cold resume recovered %d samples through round %d",
			rr.RecoveredSamples, rr.RecoveredRound)
	}
	if !rr.PlanMatched {
		t.Fatal("replanned topology does not match the journaled fingerprint")
	}
	if mon2.Store().Len() != rr.RecoveredSamples {
		t.Fatalf("store has %d samples, resume reported %d",
			mon2.Store().Len(), rr.RecoveredSamples)
	}
	if err := mon2.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := mon2.Verify(); err != nil {
		t.Fatalf("cold-resumed session failed verification: %v", err)
	}
	rep := mon2.Report()
	if rep.CollectorRestarts != 1 {
		t.Fatalf("restarts = %d, want 1", rep.CollectorRestarts)
	}
	if mon2.Store().Len() <= rr.RecoveredSamples {
		t.Fatal("cold-resumed session collected nothing new")
	}
}

// TestColdResumeAfterChurn crashes a session mid-churn: tasks mutate
// several times (journaled as recTasks records with the partition and
// plan diff), the process dies without sealing a final checkpoint, and
// the cold resume must rebuild the exact pre-crash forest — fingerprint
// match included — from the journaled partition alone.
func TestColdResumeAfterChurn(t *testing.T) {
	dir := t.TempDir()
	sys := bigSystem(t, 12)
	p := remo.NewPlanner(sys, remo.WithVerification(), remo.WithJournal(dir))
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(5); err != nil {
		t.Fatal(err)
	}
	// Three churn batches: grow, rewire, shrink.
	batches := [][]remo.Task{
		{
			{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()},
			{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()[:8]},
		},
		{
			{Name: "cpu", Attrs: []remo.AttrID{1, 3}, Nodes: sys.NodeIDs()},
			{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()[:8]},
		},
		{
			{Name: "cpu", Attrs: []remo.AttrID{1, 3}, Nodes: sys.NodeIDs()[:10]},
		},
	}
	for i, tasks := range batches {
		rep, err := mon.SetTasks(tasks)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if rep.TreesKept+rep.TreesRebuilt == 0 {
			t.Fatalf("batch %d: replan produced no trees", i)
		}
		if err := mon.Run(3); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	events := mon.Report().Replans
	if len(events) != len(batches) {
		t.Fatalf("recorded %d replan events, want %d", len(events), len(batches))
	}
	fp := mon.Fingerprint()
	// Crash: the session is abandoned without Close, so recovery replays
	// the churn from WAL records instead of reading a sealed checkpoint.

	mon2, rr, err := p.ResumeMonitor(dir, remo.MonitorConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon2.Close() }()
	if !rr.PlanMatched {
		t.Fatalf("cold resume rebuilt fingerprint %#x, want the pre-crash %#x", mon2.Fingerprint(), fp)
	}
	if mon2.Fingerprint() != fp {
		t.Fatalf("resumed fingerprint %#x differs from pre-crash %#x", mon2.Fingerprint(), fp)
	}
	if err := mon2.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := mon2.Verify(); err != nil {
		t.Fatalf("resumed session failed verification: %v", err)
	}
	_ = mon.Close()
}

// TestResumeRequiresJournal pins the error contract: resuming a session
// that never journaled is refused with a clear message.
func TestResumeRequiresJournal(t *testing.T) {
	sys := bigSystem(t, 6)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if _, err := mon.Resume(t.TempDir()); err == nil ||
		!strings.Contains(err.Error(), "without journaling") {
		t.Fatalf("err = %v, want journaling-required error", err)
	}
	// And resuming from an empty directory fails even on a journaled
	// session: no checkpoint, no resume.
	p2 := remo.NewPlanner(sys)
	p2.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	mon2, err := p2.StartMonitor(remo.MonitorConfig{Seed: 1, Journal: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon2.Close() }()
	if _, err := mon2.Resume(t.TempDir()); err == nil {
		t.Fatal("resume from an empty journal dir succeeded")
	}
}

// TestJournaledTriggersResumeCooldowns closes the processor loop: a
// trigger that fired before the restart stays in cooldown after a cold
// resume instead of re-alerting immediately.
func TestJournaledTriggersResumeCooldowns(t *testing.T) {
	dir := t.TempDir()
	sys := bigSystem(t, 8)
	p := remo.NewPlanner(sys, remo.WithJournal(dir))
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	proc := remo.NewProcessor(0)
	// Always-firing trigger with a long cooldown: exactly one alert per
	// pair over the horizon.
	if err := proc.AddTrigger(remo.Trigger{
		Name: "any", Attr: 1, Cond: remo.TriggerAbove, Threshold: -1e18, Cooldown: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 5, Processor: proc})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(10); err != nil {
		t.Fatal(err)
	}
	fired := proc.AlertCount()
	if fired == 0 {
		t.Fatal("trigger never fired")
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	proc2 := remo.NewProcessor(0)
	if err := proc2.AddTrigger(remo.Trigger{
		Name: "any", Attr: 1, Cond: remo.TriggerAbove, Threshold: -1e18, Cooldown: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	mon2, _, err := p.ResumeMonitor(dir, remo.MonitorConfig{Seed: 5, Processor: proc2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon2.Close() }()
	if err := mon2.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := proc2.AlertCount(); got != 0 {
		t.Fatalf("restored triggers re-fired %d times inside their cooldowns", got)
	}
}
