package remo

import (
	"remo/internal/store"
)

// Monitoring data repository and result processor (the data collector
// components of the paper's §2.2 system model), re-exported for use with
// DeployConfig.OnValue.
type (
	// Store retains collected values as bounded per-pair time series.
	Store = store.Store
	// Sample is one retained observation.
	Sample = store.Sample
	// Summary aggregates a pair's retained samples.
	Summary = store.Summary
	// Processor evaluates standing triggers over collected values.
	Processor = store.Processor
	// Trigger is a threshold watch.
	Trigger = store.Trigger
	// Alert records a trigger firing.
	Alert = store.Alert
	// TriggerCondition compares values against thresholds.
	TriggerCondition = store.Condition
)

// Trigger conditions.
const (
	// TriggerAbove fires when value > threshold.
	TriggerAbove = store.Above
	// TriggerBelow fires when value < threshold.
	TriggerBelow = store.Below
)

// NewStore returns a repository retaining up to capacity samples per
// pair (a sensible default when capacity <= 0).
func NewStore(capacity int) *Store { return store.New(capacity) }

// NewProcessor returns a result processor retaining up to maxAlerts
// alerts (a sensible default when maxAlerts <= 0).
func NewProcessor(maxAlerts int) *Processor { return store.NewProcessor(maxAlerts) }
