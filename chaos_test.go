package remo_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"remo"
)

// bigSystem builds an n-node system with ample per-node capacity so
// repairs always have room to rebuild.
func bigSystem(t *testing.T, n int) *remo.System {
	t.Helper()
	nodes := make([]remo.Node, n)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 400,
			Attrs:    []remo.AttrID{1, 2, 3},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 5000,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestChaosSelfHealingEndToEnd is the acceptance run: kill over 20% of
// the nodes mid-session under the adaptive scheme, and require that the
// runtime detects each death within the suspicion window, repairs the
// topology automatically, and keeps collecting from the survivors.
func TestChaosSelfHealingEndToEnd(t *testing.T) {
	const (
		nNodes    = 30
		crashRnd  = 8
		suspicion = 3
		rounds    = 40
	)
	sys := bigSystem(t, nNodes)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2, 3}, Nodes: sys.NodeIDs()})

	// Kill 7 of 30 nodes (23%) at round 8.
	crashed := []remo.NodeID{3, 7, 11, 15, 19, 23, 27}
	crashAt := make(map[remo.NodeID]int, len(crashed))
	for _, n := range crashed {
		crashAt[n] = crashRnd
	}

	goroutinesBefore := runtime.NumGoroutine()

	// Observe what the collector accepts in the final rounds to verify
	// post-repair collection behaviorally, not just from planner stats.
	var obsMu sync.Mutex
	lateRows := make(map[remo.Pair]struct{})
	mon, err := p.StartMonitor(remo.MonitorConfig{
		Scheme:  remo.AdaptAdaptive,
		Seed:    42,
		Chaos:   &remo.ChaosConfig{CrashAt: crashAt},
		Failure: &remo.FailurePolicy{SuspicionRounds: suspicion},
		OnValue: func(pair remo.Pair, round int, value float64) {
			if round >= rounds-10 {
				obsMu.Lock()
				lateRows[pair] = struct{}{}
				obsMu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Run(rounds); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	// Every crashed node was detected, within the suspicion window.
	if rep.FailuresDetected != len(crashed) {
		t.Fatalf("detected %d failures, want %d (repairs: %+v)",
			rep.FailuresDetected, len(crashed), rep.Repairs)
	}
	if len(rep.Repairs) == 0 {
		t.Fatal("no automatic repairs recorded")
	}
	seen := make(map[remo.NodeID]bool)
	for _, ev := range rep.Repairs {
		for _, n := range ev.Failed {
			seen[n] = true
			// Crash at round 8, last beat round 7: declaration is due at
			// round 7+suspicion; the repair lands that same step.
			if ev.Round > crashRnd+suspicion {
				t.Fatalf("node %v repaired at round %d, want <= %d",
					n, ev.Round, crashRnd+suspicion)
			}
		}
		if len(ev.Failed) > 0 && ev.DetectionRounds > suspicion {
			t.Fatalf("detection latency %d exceeds suspicion window %d",
				ev.DetectionRounds, suspicion)
		}
	}
	for _, n := range crashed {
		if !seen[n] {
			t.Fatalf("crashed node %v missing from repair events %+v", n, rep.Repairs)
		}
	}

	// Post-repair planned coverage of surviving pairs stays >= 95%.
	final := rep.Repairs[len(rep.Repairs)-1]
	if final.CoverageAfter < 95 {
		t.Fatalf("post-repair coverage %.1f%%, want >= 95%%", final.CoverageAfter)
	}

	// Behavioral check: the last 10 rounds still deliver values from at
	// least 95% of surviving collectible pairs.
	survivingPairs := (nNodes - len(crashed)) * 3
	obsMu.Lock()
	got := len(lateRows)
	obsMu.Unlock()
	if 100*got < 95*survivingPairs {
		t.Fatalf("late-phase delivery from %d pairs, want >= 95%% of %d",
			got, survivingPairs)
	}
	// And the dead stayed pruned: no crashed node delivers post-repair.
	obsMu.Lock()
	for pair := range lateRows {
		for _, n := range crashed {
			if pair.Node == n {
				t.Fatalf("dead node %v delivered value post-repair", n)
			}
		}
	}
	obsMu.Unlock()

	// No goroutine leaks once the session closes.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore {
		t.Fatalf("goroutine leak: %d before, %d after close", goroutinesBefore, now)
	}
}

// TestChaosSelfHealingOverTCP runs a smaller kill schedule over the
// loopback TCP transport: the hardened Send path must survive the crash
// and repair cycle exactly like the memory transport.
func TestChaosSelfHealingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP chaos session skipped in short mode")
	}
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{
		UseTCP:  true,
		Chaos:   &remo.ChaosConfig{CrashAt: map[remo.NodeID]int{4: 5, 9: 5}},
		Failure: &remo.FailurePolicy{SuspicionRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(20); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.FailuresDetected != 2 {
		t.Fatalf("detected %d failures over TCP, want 2", rep.FailuresDetected)
	}
	if len(rep.Repairs) == 0 {
		t.Fatal("no repairs over TCP")
	}
}

// TestChaosRecoveryReintegratesNode closes the full loop: crash, repair,
// recover, reintegrate.
func TestChaosRecoveryReintegratesNode(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1, 2}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{
		Chaos: &remo.ChaosConfig{
			CrashAt:   map[remo.NodeID]int{5: 4},
			RecoverAt: map[remo.NodeID]int{5: 12},
		},
		Failure: &remo.FailurePolicy{SuspicionRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(25); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.FailuresDetected != 1 || rep.NodesRecovered != 1 {
		t.Fatalf("failures %d, recoveries %d, want 1 and 1",
			rep.FailuresDetected, rep.NodesRecovered)
	}
	if got := mon.Failed(); len(got) != 0 {
		t.Fatalf("Failed() = %v after reintegration", got)
	}
	// The reintegration event restores full coverage.
	final := rep.Repairs[len(rep.Repairs)-1]
	if len(final.Recovered) != 1 || final.Recovered[0] != 5 {
		t.Fatalf("final repair event = %+v, want recovery of node 5", final)
	}
	if final.CoverageAfter < 99 {
		t.Fatalf("coverage after reintegration %.1f%%, want ~100%%", final.CoverageAfter)
	}
}

// TestChaosDetectionOnlyPolicy verifies DisableRepair: failures are
// reported but the topology is left alone.
func TestChaosDetectionOnlyPolicy(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{
		Chaos:   &remo.ChaosConfig{CrashAt: map[remo.NodeID]int{3: 4}},
		Failure: &remo.FailurePolicy{SuspicionRounds: 2, DisableRepair: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(15); err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	if rep.FailuresDetected != 1 {
		t.Fatalf("detected %d failures, want 1", rep.FailuresDetected)
	}
	if len(rep.Repairs) != 0 {
		t.Fatalf("repairs happened despite DisableRepair: %+v", rep.Repairs)
	}
	if got := mon.Failed(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Failed() = %v, want [3]", got)
	}
}

// TestChaosMonitorConcurrency races Run, SetTasks, Report and Close.
func TestChaosMonitorConcurrency(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	mon, err := p.StartMonitor(remo.MonitorConfig{
		Chaos:   &remo.ChaosConfig{CrashAt: map[remo.NodeID]int{2: 5}},
		Failure: &remo.FailurePolicy{SuspicionRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := mon.Run(3); err != nil {
				return // closed under us: expected
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			_, _ = mon.SetTasks([]remo.Task{
				{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()},
				{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: sys.NodeIDs()[:6]},
			})
			_ = mon.Report()
			_ = mon.Round()
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		_ = mon.Report()
		_ = mon.Close()
	}()
	wg.Wait()
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
}
