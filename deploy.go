package remo

import (
	"fmt"
	"time"

	"remo/internal/chaos"
	"remo/internal/cluster"
	"remo/internal/trace"
	"remo/internal/transport"
	"remo/internal/verify"
)

// Emulation tracing, re-exported for DeployConfig.Trace.
type (
	// TraceRecorder retains structured emulation events.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded emulation event.
	TraceEvent = trace.Event
	// TraceKind classifies trace events.
	TraceKind = trace.Kind
)

// Trace event kinds.
const (
	TraceSend        = trace.Send
	TraceRecvDrop    = trace.RecvDrop
	TraceSendDrop    = trace.SendDrop
	TraceDeliver     = trace.Deliver
	TraceNodeDead    = trace.NodeDead
	TraceDetect      = trace.Detect
	TraceRepair      = trace.Repair
	TraceNodeRecover = trace.NodeRecover
	TraceDelayed     = trace.Delayed
	TraceReplan      = trace.Replan
	TraceTreeKept    = trace.TreeKept
	TraceTreeRebuilt = trace.TreeRebuilt
	TraceTreeDropped = trace.TreeDropped
)

// Fault injection, re-exported for DeployConfig.Chaos and
// MonitorConfig.Chaos. One schedule drives both the memory and TCP
// overlays; all probabilistic decisions are deterministic in the seed,
// so chaos runs are replayable.
type (
	// ChaosConfig schedules crashes, recoveries, message loss and delay.
	ChaosConfig = chaos.Config
	// ChaosLink identifies a directed overlay link for per-link loss.
	ChaosLink = chaos.Link
	// ChaosWindow is one [From, To) round interval a node is down, for
	// ChaosConfig.CrashWindows flapping schedules.
	ChaosWindow = chaos.Window
	// ChaosRegionLink names an undirected inter-region link for
	// ChaosConfig.LinkFlaps schedules; build keys with ChaosNormLink.
	ChaosRegionLink = chaos.RegionLink
)

// ChaosNormLink normalizes an undirected region pair into the
// ChaosConfig.LinkFlaps key.
func ChaosNormLink(a, b string) ChaosRegionLink { return chaos.NormLink(a, b) }

// labelRegionChaos copies the system's region labels into a chaos
// config that uses region-scoped schedules but was not labeled
// explicitly, so callers only declare the windows.
func labelRegionChaos(c *ChaosConfig, sys *System) {
	if c == nil || len(c.Regions) > 0 {
		return
	}
	if len(c.RegionPartitions) == 0 && len(c.LinkFlaps) == 0 {
		return
	}
	c.LabelRegions(sys)
}

// RollingUpgrade builds a deterministic ChaosConfig.CrashWindows
// schedule taking the given fraction of members down at a time in
// consecutive waves of waveRounds rounds starting at round start — the
// region-scoped rolling-upgrade drill (take one region's node list from
// System.RegionNodes).
func RollingUpgrade(members []NodeID, fraction float64, start, waveRounds int) map[NodeID][]ChaosWindow {
	return chaos.RollingUpgrade(members, fraction, start, waveRounds)
}

// NewTraceRecorder returns a recorder retaining up to max events (a
// sensible default when max <= 0).
func NewTraceRecorder(max int) *TraceRecorder { return trace.NewRecorder(max) }

// ValueSource produces the attribute values the emulated nodes observe.
// It must be safe for concurrent use (node goroutines query values in
// parallel). The zero-config default is a deterministic bursty
// random-walk generator.
type ValueSource = cluster.ValueSource

// ValueFunc adapts a function to the ValueSource interface.
type ValueFunc = cluster.ValueFunc

// Deterministic value generators, re-exported for DeployConfig.Source
// and MonitorConfig.Source.
type (
	// BurstyWalk models bursty stream-processing metrics: baseline,
	// periodic drift, occasional spikes (the zero-config default).
	BurstyWalk = cluster.BurstyWalk
	// UtilWalk models machine-utilization series: long plateaus with a
	// slight drift, punctuated by level shifts — the dynamics
	// forecast-driven suppression (WithPrediction) exploits.
	UtilWalk = cluster.UtilWalk
)

// DeployConfig parameterizes an emulated deployment of a plan.
type DeployConfig struct {
	// Rounds is the number of collection rounds (default 30).
	Rounds int
	// Source overrides the ground-truth value generator.
	Source ValueSource
	// UseTCP runs the overlay over real loopback TCP connections
	// instead of the in-process transport.
	UseTCP bool
	// EnforceCapacity applies per-round capacity budgets (default true
	// via Deploy; set DisableCapacity to lift them).
	DisableCapacity bool
	// FailAt kills node n at the start of round FailAt[n] (failure
	// injection). Legacy knob: equivalent to Chaos.CrashAt.
	FailAt map[NodeID]int
	// DropEvery drops every k-th message on the wire (0 disables).
	// Legacy knob: equivalent to Chaos.DropEvery.
	DropEvery int
	// Chaos schedules richer fault injection: crash/recover schedules,
	// probabilistic and per-link message loss, and message delay. It
	// merges with (and supersedes) the legacy knobs above.
	Chaos *ChaosConfig
	// Seed decorrelates the default value generator.
	Seed uint64
	// OnValue, when set, receives every value the collector accepts
	// (alias-resolved). Feed it a Store and/or Processor to retain and
	// act on collected data:
	//
	//	st, pr := remo.NewStore(0), remo.NewProcessor(0)
	//	cfg.OnValue = func(p remo.Pair, round int, v float64) {
	//	    st.Observe(p, round, v)
	//	    pr.Observe(p, round, v)
	//	}
	OnValue func(pair Pair, round int, value float64)
	// Trace, when set, records structured emulation events (sends,
	// drops, deliveries, failures).
	Trace *TraceRecorder
}

// DeployReport summarizes what the central collector observed.
type DeployReport struct {
	// Rounds actually run.
	Rounds int
	// DemandedPairs and CoveredPairs measure coverage: pairs delivered
	// at least once.
	DemandedPairs int
	CoveredPairs  int
	// PercentCollected is delivered observations over expected ones.
	PercentCollected float64
	// AvgPercentError is the collector's mean relative error against
	// ground truth (staleness + loss), in percent.
	AvgPercentError float64
	// AvgStaleness is the mean view age in rounds.
	AvgStaleness float64
	// MessagesSent and MessagesDropped count overlay traffic.
	MessagesSent    int
	MessagesDropped int
	// ValuesDelivered counts attribute values received by the collector.
	ValuesDelivered int
	// ErrorSeries is the average percentage error per round — the
	// warm-up/convergence curve.
	ErrorSeries []float64
	// ValuesObserved, ValuesSuppressed, ValuesImputed, ModelSyncs and
	// MarkersLost account forecast-driven dead-band suppression
	// (sessions armed via WithPrediction; all zero otherwise):
	// suppression-eligible observations, observations elided from the
	// wire as within-band, markers the collector turned into imputed
	// values, periodic/forced model re-syncs absorbed, and markers that
	// died with their frame or were refused as unsafe. Conservation:
	// ValuesSuppressed ≤ ValuesObserved and
	// ValuesImputed + MarkersLost ≤ ValuesSuppressed.
	ValuesObserved   int
	ValuesSuppressed int
	ValuesImputed    int
	ModelSyncs       int
	MarkersLost      int
	// ImputeBandMax is the worst observed |imputed − truth| as a
	// fraction of the allowed band — ≤ 1 by construction.
	ImputeBandMax float64
	// FailuresDetected counts death declarations by the failure detector
	// (self-healing sessions only).
	FailuresDetected int
	// NodesRecovered counts resurrections noticed by the detector.
	NodesRecovered int
	// Repairs records every automatic topology repair, in order.
	Repairs []RepairEvent
	// StaleEpochFrames counts frames rejected by epoch fencing
	// (journaled sessions only): values composed under a plan epoch
	// older than the receiver's — pre-crash or pre-swap traffic.
	StaleEpochFrames int
	// FramesBuffered, FramesShed and FramesRedelivered account the
	// leaf-side outgoing buffers of a journaled session: frames parked
	// during collector outages, frames dropped oldest-first on
	// overflow, and parked frames delivered after the fact.
	FramesBuffered    int
	FramesShed        int
	FramesRedelivered int
	// CollectorRestarts counts successful collector resumes
	// (Monitor.Resume and cold ResumeMonitor starts).
	CollectorRestarts int
	// Replans records every SetTasks-driven plan swap's tree-level diff,
	// in order (live Monitor sessions only).
	Replans []ReplanEvent
	// Shards is the collector shard count (0 for single-collector
	// sessions); the fields below are populated for sharded sessions
	// only.
	Shards int
	// ShardsDown counts shards currently declared dead.
	ShardsDown int
	// OrphanedTrees counts trees that lost their owning shard to a
	// death, cumulatively; TreesRedispatched counts how many of those
	// re-homings landed on a surviving shard.
	OrphanedTrees     int
	TreesRedispatched int
	// LeaderElections counts dispatcher leadership changes.
	LeaderElections int
	// ShardWatermarks is the last round each shard was live (-1 = never)
	// — a lagging shard degrades these instead of blocking the round.
	ShardWatermarks []int
	// Redispatches records every tree re-homing the dispatcher decided
	// (orphan re-dispatches after a shard death plus rebalances onto
	// recovered shards), in apply order.
	Redispatches []RedispatchEvent
}

// RedispatchEvent records one tree re-homing decided by the shard
// dispatcher.
type RedispatchEvent struct {
	// Round is the collection round the move was decided in.
	Round int
	// TreeKey identifies the moved collection tree.
	TreeKey string
	// FromShard is the shard the tree left (dead for an orphan
	// re-dispatch, a donor for a rebalance); ToShard is its new owner.
	FromShard, ToShard int
}

// ReplanEvent records one task-mutation replan of a live Monitor: how
// the installed forest relates to the one it replaced, and which
// planning path produced it.
type ReplanEvent struct {
	// Round is the collection round the swap landed before.
	Round int
	// TreesKept counts trees reused byte-for-byte (identical
	// fingerprint) — their members see no reconfiguration at all.
	TreesKept int
	// TreesRebuilt counts new or restructured trees, TreesDropped
	// attribute sets retired by the swap.
	TreesRebuilt int
	// TreesDropped counts retired attribute sets (see TreesRebuilt).
	TreesDropped int
	// ReusePct is TreesKept over the new forest's tree count, percent.
	ReusePct float64
	// Incremental reports that the scoped incremental search produced
	// the plan; FellBack that a scoped attempt was discarded for a full
	// replan.
	Incremental bool
	// FellBack reports a discarded scoped attempt (see Incremental).
	FellBack bool
	// PlanTime is the replan's wall-clock planning cost.
	PlanTime time.Duration
	// AdaptMessages counts overlay reconfiguration messages of the swap.
	AdaptMessages int
}

// RepairEvent records one automatic self-healing action of a live
// Monitor: a topology repair after detected failures, or a
// reintegration after detected recoveries.
type RepairEvent struct {
	// Round is the collection round the runtime acted in.
	Round int
	// Failed lists the nodes declared dead that triggered the repair.
	Failed []NodeID
	// Recovered lists resurrected nodes reintegrated into the topology.
	Recovered []NodeID
	// DetectionRounds is the worst detection latency among Failed: rounds
	// between a node's last evidence of life and its declaration.
	DetectionRounds int
	// TreesRebuilt and EdgesChanged measure the repair's topology churn.
	TreesRebuilt int
	EdgesChanged int
	// PairsLost counts pairs observable only at the failed nodes.
	PairsLost int
	// CoverageAfter is the planned coverage of surviving demanded pairs
	// after the repair, in percent.
	CoverageAfter float64
}

// Deploy emulates the plan: one goroutine per node, periodic update
// messages flowing up the collection trees, capacity enforced per round,
// and a central collector measuring coverage and percentage error.
func (p *Plan) Deploy(cfg DeployConfig) (DeployReport, error) {
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 30
	}
	var source ValueSource = cfg.Source
	if source == nil {
		source = cluster.BurstyWalk{Seed: cfg.Seed}
	}
	labelRegionChaos(cfg.Chaos, p.sys)

	ccfg := cluster.Config{
		Sys:             p.sys,
		Forest:          p.forest(),
		Demand:          p.internalDemand(),
		Spec:            p.aggSpec,
		Source:          source,
		Rounds:          rounds,
		Workers:         p.runtimeWorkers,
		Resolve:         p.resolve,
		EnforceCapacity: !cfg.DisableCapacity,
		FailAt:          cfg.FailAt,
		DropEvery:       cfg.DropEvery,
		Chaos:           cfg.Chaos,
		Observer:        cfg.OnValue,
		Trace:           cfg.Trace,
		Predict:         p.predSpec,
	}
	if cfg.UseTCP {
		tr, err := transport.NewTCP(p.sys.NodeIDs())
		if err != nil {
			return DeployReport{}, fmt.Errorf("remo: start TCP transport: %w", err)
		}
		defer func() { _ = tr.Close() }()
		ccfg.Transport = tr
	}

	res, err := cluster.Run(ccfg)
	if err != nil {
		return DeployReport{}, fmt.Errorf("remo: deploy: %w", err)
	}
	if p.verifyOn {
		if err := verify.Result(p.verifyContext(), res); err != nil {
			return DeployReport{}, fmt.Errorf("remo: deploy result failed verification: %w", err)
		}
	}
	return DeployReport{
		Rounds:           res.Rounds,
		DemandedPairs:    res.DemandedPairs,
		CoveredPairs:     res.CoveredPairs,
		PercentCollected: res.PercentCollected,
		AvgPercentError:  res.AvgPercentError,
		AvgStaleness:     res.AvgStaleness,
		MessagesSent:     res.MessagesSent,
		MessagesDropped:  res.MessagesDropped,
		ValuesDelivered:  res.ValuesDelivered,
		ValuesObserved:   res.ValuesObserved,
		ValuesSuppressed: res.ValuesSuppressed,
		ValuesImputed:    res.ValuesImputed,
		ModelSyncs:       res.ModelSyncs,
		MarkersLost:      res.MarkersLost,
		ImputeBandMax:    res.ImputeBandMax,
		ErrorSeries:      res.ErrorSeries,
	}, nil
}
